//! Property-based tests for converter invariants.

use proptest::prelude::*;
use uwb_adc::{FlashAdc, InterleaveMismatch, InterleavedAdc, Quantizer, SarAdc};
use uwb_sim::Rand;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantization error is bounded by half an LSB inside full scale.
    #[test]
    fn quantizer_error_bound(bits in 1u32..12, x in -0.999f64..0.999) {
        let q = Quantizer::new(bits, 1.0);
        let e = (q.quantize(x) - x).abs();
        prop_assert!(e <= q.step() / 2.0 + 1e-12);
    }

    /// Quantization is monotone non-decreasing.
    #[test]
    fn quantizer_monotone(bits in 1u32..10, a in -2.0f64..2.0, b in -2.0f64..2.0) {
        let q = Quantizer::new(bits, 1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
        prop_assert!(q.quantize_code(lo) <= q.quantize_code(hi));
    }

    /// Codes always reconstruct to the value that re-quantizes to the same
    /// code (idempotence).
    #[test]
    fn quantizer_idempotent(bits in 1u32..10, x in -3.0f64..3.0) {
        let q = Quantizer::new(bits, 1.0);
        let y = q.quantize(x);
        prop_assert_eq!(q.quantize(y), y);
        let c = q.quantize_code(x);
        prop_assert_eq!(q.quantize_code(q.reconstruct(c)), c);
    }

    /// An ideal flash converter agrees with the ideal quantizer everywhere.
    #[test]
    fn flash_matches_quantizer(bits in 1u32..9, x in -2.0f64..2.0) {
        let flash = FlashAdc::ideal(bits, 1.0);
        let q = Quantizer::new(bits, 1.0);
        prop_assert!((flash.convert(x) - q.quantize(x)).abs() < 1e-12);
    }

    /// A flash converter with offsets stays monotone (bubble-corrected).
    #[test]
    fn flash_monotone_with_offsets(seed in any::<u64>(), sigma in 0.0f64..0.05) {
        let mut rng = Rand::new(seed);
        let flash = FlashAdc::with_offsets(5, 1.0, sigma, &mut rng);
        let mut prev = 0u32;
        for i in -40..=40 {
            let c = flash.convert_code(i as f64 / 40.0);
            prop_assert!(c >= prev);
            prev = c;
        }
    }

    /// An ideal SAR converter agrees with the ideal quantizer.
    #[test]
    fn sar_matches_quantizer(bits in 1u32..12, x in -0.999f64..0.999) {
        let sar = SarAdc::ideal(bits, 1.0);
        let q = Quantizer::new(bits, 1.0);
        let mut rng = Rand::new(0);
        prop_assert!((sar.convert(x, &mut rng) - q.quantize(x)).abs() < 1e-12);
    }

    /// For an ideal SAR, code/reconstruct round-trips exactly; with weight
    /// mismatch the reconstruction still re-converts to within one code of
    /// the original (the half-LSB recentering can straddle a shifted
    /// boundary).
    #[test]
    fn sar_code_round_trip(seed in any::<u64>()) {
        let ideal = SarAdc::ideal(6, 1.0);
        let mut r = Rand::new(1);
        for code in 0..64u32 {
            prop_assert_eq!(ideal.convert_code(ideal.reconstruct(code), &mut r), code);
        }
        let mut rng = Rand::new(seed);
        let real = SarAdc::with_mismatch(6, 1.0, 0.01, 0.0, &mut rng);
        for code in 0..64u32 {
            let back = real.convert_code(real.reconstruct(code), &mut r);
            prop_assert!(back.abs_diff(code) <= 1, "code {code} -> {back}");
        }
    }

    /// An ideal interleaved converter is lane-transparent: output equals a
    /// single ideal flash regardless of the lane count.
    #[test]
    fn interleave_transparent(m in 1usize..8, seed in any::<u64>()) {
        let mut rng = Rand::new(seed);
        let adc = InterleavedAdc::new(m, 4, 1.0, 2e9, InterleaveMismatch::none(), &mut rng);
        let single = FlashAdc::ideal(4, 1.0);
        let x: Vec<f64> = (0..200).map(|i| 0.9 * (i as f64 * 0.173).sin()).collect();
        prop_assert_eq!(adc.convert_block(&x), single.convert_block(&x));
    }

    /// Parallelizer preserves every sample exactly once.
    #[test]
    fn parallelize_partition(n in 1usize..500, seed in any::<u64>()) {
        let mut rng = Rand::new(seed);
        let adc = InterleavedAdc::gen1(4, InterleaveMismatch::none(), &mut rng);
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let streams = adc.parallelize(&data);
        let total: usize = streams.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        // Reinterleave and compare.
        let mut rebuilt = vec![0.0; n];
        for (lane, s) in streams.iter().enumerate() {
            for (k, &v) in s.iter().enumerate() {
                rebuilt[k * 4 + lane] = v;
            }
        }
        prop_assert_eq!(rebuilt, data);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fused AGC-scale + quantize sweep is bitwise identical to scaling
    /// and quantizing each sample through the scalar path.
    #[test]
    fn quantize_scaled_matches_scalar_bitwise(
        bits in 1u32..12,
        gain in 0.01f64..10.0,
        xs in prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0), 0..200),
    ) {
        use uwb_dsp::Complex;
        let q = Quantizer::new(bits, 1.0);
        let input: Vec<Complex> = xs.into_iter().map(|(re, im)| Complex::new(re, im)).collect();
        let mut out = Vec::new();
        q.quantize_scaled_into(&input, gain, &mut out);
        prop_assert_eq!(out.len(), input.len());
        for (z, o) in input.iter().zip(&out) {
            prop_assert_eq!(q.quantize(z.re * gain).to_bits(), o.re.to_bits());
            prop_assert_eq!(q.quantize(z.im * gain).to_bits(), o.im.to_bits());
        }
    }
}
