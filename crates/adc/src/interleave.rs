//! Time-interleaved converter array.
//!
//! The gen1 chip reaches 2 GSps with a "4-way time-interleaved flash ADC
//! that performs an initial 4-way parallelization of the signal" (paper §2).
//! Interleaving introduces its own error family — per-lane offset, gain, and
//! sample-time (skew) mismatch — which appear as spurs at `fs/M` offsets.

use crate::flash::FlashAdc;
use uwb_sim::rng::Rand;

/// Per-lane mismatch parameters for a time-interleaved array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterleaveMismatch {
    /// Per-lane offset sigma (volts).
    pub offset_sigma: f64,
    /// Per-lane gain error sigma (relative).
    pub gain_sigma: f64,
    /// Per-lane sampling-time skew sigma (seconds).
    pub skew_sigma_s: f64,
}

impl InterleaveMismatch {
    /// No mismatch.
    pub fn none() -> Self {
        InterleaveMismatch {
            offset_sigma: 0.0,
            gain_sigma: 0.0,
            skew_sigma_s: 0.0,
        }
    }

    /// Representative 0.18 µm-era values: 2 mV offset, 0.5 % gain, 2 ps skew.
    pub fn typical() -> Self {
        InterleaveMismatch {
            offset_sigma: 2e-3,
            gain_sigma: 5e-3,
            skew_sigma_s: 2e-12,
        }
    }
}

impl Default for InterleaveMismatch {
    fn default() -> Self {
        InterleaveMismatch::none()
    }
}

/// An `M`-way time-interleaved array of flash converters.
#[derive(Debug, Clone)]
pub struct InterleavedAdc {
    lanes: Vec<FlashAdc>,
    offsets: Vec<f64>,
    gains: Vec<f64>,
    skews_s: Vec<f64>,
    aggregate_rate_hz: f64,
}

impl InterleavedAdc {
    /// The gen1 configuration: 4-way interleaved flash at 2 GSps aggregate,
    /// `bits` resolution.
    pub fn gen1(bits: u32, mismatch: InterleaveMismatch, rng: &mut Rand) -> Self {
        InterleavedAdc::new(4, bits, 1.0, 2.0e9, mismatch, rng)
    }

    /// Creates an `m`-way interleaved converter.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or the flash parameters are invalid.
    pub fn new(
        m: usize,
        bits: u32,
        full_scale: f64,
        aggregate_rate_hz: f64,
        mismatch: InterleaveMismatch,
        rng: &mut Rand,
    ) -> Self {
        assert!(m > 0, "need at least one lane");
        assert!(aggregate_rate_hz > 0.0, "rate must be positive");
        let lanes = (0..m)
            .map(|_| FlashAdc::with_offsets(bits, full_scale, 0.0, rng))
            .collect();
        let offsets = (0..m).map(|_| mismatch.offset_sigma * rng.gaussian()).collect();
        let gains = (0..m)
            .map(|_| 1.0 + mismatch.gain_sigma * rng.gaussian())
            .collect();
        let skews_s = (0..m).map(|_| mismatch.skew_sigma_s * rng.gaussian()).collect();
        InterleavedAdc {
            lanes,
            offsets,
            gains,
            skews_s,
            aggregate_rate_hz,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Aggregate sample rate in hertz.
    pub fn aggregate_rate_hz(&self) -> f64 {
        self.aggregate_rate_hz
    }

    /// Per-lane sample rate.
    pub fn lane_rate_hz(&self) -> f64 {
        self.aggregate_rate_hz / self.lanes.len() as f64
    }

    /// Converts a block sampled at the aggregate rate. Sample `i` goes to
    /// lane `i % M` with that lane's offset, gain, and skew applied.
    ///
    /// Skew is modeled to first order: `x(t + δ) ≈ x(t) + δ·x'(t)` using the
    /// discrete derivative — accurate for the small (ps) skews of interest.
    pub fn convert_block(&self, input: &[f64]) -> Vec<f64> {
        let m = self.lanes.len();
        let dt = 1.0 / self.aggregate_rate_hz;
        let n = input.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lane = i % m;
            // First-order skew interpolation.
            let deriv = if i + 1 < n && i > 0 {
                (input[i + 1] - input[i - 1]) / (2.0 * dt)
            } else {
                0.0
            };
            let x_skewed = input[i] + self.skews_s[lane] * deriv;
            let x_lane = self.gains[lane] * x_skewed + self.offsets[lane];
            out.push(self.lanes[lane].convert(x_lane));
        }
        out
    }

    /// Splits a converted block into the `M` per-lane streams — the "initial
    /// 4-way parallelization of the signal" handed to the digital back end.
    pub fn parallelize(&self, converted: &[f64]) -> Vec<Vec<f64>> {
        let m = self.lanes.len();
        let mut streams = vec![Vec::with_capacity(converted.len() / m + 1); m];
        for (i, &x) in converted.iter().enumerate() {
            streams[i % m].push(x);
        }
        streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::psd::periodogram_real;
    use uwb_dsp::Window;

    fn sine(n: usize, f_norm: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (std::f64::consts::TAU * f_norm * i as f64).sin())
            .collect()
    }

    #[test]
    fn ideal_interleave_matches_single_flash() {
        let mut rng = Rand::new(1);
        let adc = InterleavedAdc::new(4, 4, 1.0, 2e9, InterleaveMismatch::none(), &mut rng);
        let single = FlashAdc::ideal(4, 1.0);
        let x = sine(1000, 0.0173, 0.9);
        let a = adc.convert_block(&x);
        let b = single.convert_block(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn gen1_geometry() {
        let mut rng = Rand::new(2);
        let adc = InterleavedAdc::gen1(4, InterleaveMismatch::none(), &mut rng);
        assert_eq!(adc.lanes(), 4);
        assert_eq!(adc.aggregate_rate_hz(), 2.0e9);
        assert_eq!(adc.lane_rate_hz(), 0.5e9);
    }

    #[test]
    fn parallelize_round_robin() {
        let mut rng = Rand::new(3);
        let adc = InterleavedAdc::new(4, 4, 1.0, 2e9, InterleaveMismatch::none(), &mut rng);
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let streams = adc.parallelize(&data);
        assert_eq!(streams.len(), 4);
        assert_eq!(streams[0], vec![0.0, 4.0, 8.0]);
        assert_eq!(streams[3], vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn offset_mismatch_creates_fs_over_m_spurs() {
        let mut rng = Rand::new(4);
        let mismatch = InterleaveMismatch {
            offset_sigma: 0.02,
            gain_sigma: 0.0,
            skew_sigma_s: 0.0,
        };
        let adc = InterleavedAdc::new(4, 8, 1.0, 2e9, mismatch, &mut rng);
        let n = 8192;
        let x = sine(n, 0.0137, 0.9);
        let y = adc.convert_block(&x);
        let psd = periodogram_real(&y, 2e9, Window::Blackman);
        // Offset spurs at multiples of fs/4 = 500 MHz (and DC).
        let spur = psd.value_at(500e6);
        let floor = psd.value_at(333e6);
        assert!(
            spur > 10.0 * floor,
            "expected fs/4 offset spur: {spur} vs floor {floor}"
        );
    }

    #[test]
    fn gain_mismatch_creates_image_spurs() {
        let mut rng = Rand::new(5);
        let mismatch = InterleaveMismatch {
            offset_sigma: 0.0,
            gain_sigma: 0.05,
            skew_sigma_s: 0.0,
        };
        let adc = InterleavedAdc::new(4, 10, 1.0, 2e9, mismatch, &mut rng);
        let n = 8192;
        let f_in = 0.0137; // normalized
        let x = sine(n, f_in, 0.9);
        let y = adc.convert_block(&x);
        let psd = periodogram_real(&y, 2e9, Window::Blackman);
        // Gain-mismatch image at fs/4 - f_in.
        let f_image = 2e9 * (0.25 - f_in);
        let spur = psd.value_at(f_image);
        let floor = psd.value_at(2e9 * 0.19);
        assert!(
            spur > 10.0 * floor,
            "expected gain image spur: {spur} vs {floor}"
        );
    }

    #[test]
    fn skew_error_grows_with_frequency() {
        let mut rng = Rand::new(6);
        let mismatch = InterleaveMismatch {
            offset_sigma: 0.0,
            gain_sigma: 0.0,
            skew_sigma_s: 10e-12,
        };
        let adc = InterleavedAdc::new(4, 10, 1.0, 2e9, mismatch, &mut rng);
        let n = 8192;
        let err_at = |f_norm: f64| {
            let x = sine(n, f_norm, 0.9);
            let y = adc.convert_block(&x);
            let e: f64 = x[1..n - 1]
                .iter()
                .zip(&y[1..n - 1])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            e / (n - 2) as f64
        };
        let low = err_at(0.005);
        let high = err_at(0.2);
        assert!(high > 4.0 * low, "skew error should grow with f: {low} vs {high}");
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        InterleavedAdc::new(0, 4, 1.0, 1e9, InterleaveMismatch::none(), &mut Rand::new(0));
    }
}
