//! Flash ADC model with comparator non-idealities.
//!
//! The gen1 chip digitizes with a "2 GSPS FLASH interleaved analog to digital
//! converter" (paper Fig. 1). A flash converter is a bank of `2^b − 1`
//! comparators whose individual offsets set the converter's INL/DNL; this
//! model draws per-comparator offsets once at construction so a given
//! converter instance has a stable transfer function.

use crate::quantizer::Quantizer;
use uwb_sim::rng::Rand;

/// A flash ADC: thermometer comparator bank with per-comparator offset.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashAdc {
    bits: u32,
    full_scale: f64,
    /// Comparator thresholds, ascending; length `2^bits − 1`.
    thresholds: Vec<f64>,
}

impl FlashAdc {
    /// An ideal flash converter (zero comparator offset).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 10 (flash converters do not
    /// scale past that), or `full_scale <= 0`.
    pub fn ideal(bits: u32, full_scale: f64) -> Self {
        FlashAdc::with_offsets(bits, full_scale, 0.0, &mut Rand::new(0))
    }

    /// A flash converter whose comparator offsets are drawn from a Gaussian
    /// with standard deviation `offset_sigma` (volts, same units as
    /// `full_scale`).
    ///
    /// # Panics
    ///
    /// Panics on invalid `bits`/`full_scale` as for [`FlashAdc::ideal`].
    pub fn with_offsets(bits: u32, full_scale: f64, offset_sigma: f64, rng: &mut Rand) -> Self {
        assert!((1..=10).contains(&bits), "flash bits must be in 1..=10");
        assert!(full_scale > 0.0, "full scale must be positive");
        let levels = 1usize << bits;
        let step = 2.0 * full_scale / levels as f64;
        let mut thresholds: Vec<f64> = (1..levels)
            .map(|k| -full_scale + k as f64 * step + offset_sigma * rng.gaussian())
            .collect();
        // Real flash converters bubble-correct; emulate by sorting.
        thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        FlashAdc {
            bits,
            full_scale,
            thresholds,
        }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale amplitude.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Converts one sample to its output code in `[0, 2^bits − 1]`
    /// (thermometer count of tripped comparators).
    pub fn convert_code(&self, x: f64) -> u32 {
        // Binary search over sorted thresholds == count below x.
        self.thresholds.partition_point(|&t| t <= x) as u32
    }

    /// Converts one sample to the reconstruction amplitude.
    pub fn convert(&self, x: f64) -> f64 {
        let code = self.convert_code(x);
        let levels = 1u32 << self.bits;
        let step = 2.0 * self.full_scale / levels as f64;
        -self.full_scale + (code as f64 + 0.5) * step
    }

    /// Converts a block of samples to reconstruction amplitudes.
    pub fn convert_block(&self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.convert(x)).collect()
    }

    /// Differential nonlinearity per code, in LSB. An ideal converter is all
    /// zeros.
    pub fn dnl_lsb(&self) -> Vec<f64> {
        let step = 2.0 * self.full_scale / (1u32 << self.bits) as f64;
        self.thresholds
            .windows(2)
            .map(|w| (w[1] - w[0]) / step - 1.0)
            .collect()
    }

    /// Integral nonlinearity per code, in LSB (cumulative sum of DNL).
    pub fn inl_lsb(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.dnl_lsb()
            .iter()
            .map(|&d| {
                acc += d;
                acc
            })
            .collect()
    }

    /// The equivalent ideal quantizer (same bits and full scale).
    pub fn to_ideal_quantizer(&self) -> Quantizer {
        Quantizer::new(self.bits, self.full_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_flash_matches_quantizer() {
        let flash = FlashAdc::ideal(4, 1.0);
        let q = flash.to_ideal_quantizer();
        for i in -100..=100 {
            let x = i as f64 / 100.0 * 1.2; // include clipping region
            assert!(
                (flash.convert(x) - q.quantize(x)).abs() < 1e-12,
                "mismatch at {x}"
            );
        }
    }

    #[test]
    fn codes_monotonic_in_input() {
        let mut rng = Rand::new(1);
        let flash = FlashAdc::with_offsets(5, 1.0, 0.01, &mut rng);
        let mut prev = 0;
        for i in -100..=100 {
            let x = i as f64 / 100.0;
            let c = flash.convert_code(x);
            assert!(c >= prev, "non-monotonic at {x}");
            prev = c;
        }
    }

    #[test]
    fn full_code_range_exercised() {
        let flash = FlashAdc::ideal(3, 1.0);
        assert_eq!(flash.convert_code(-2.0), 0);
        assert_eq!(flash.convert_code(2.0), 7);
    }

    #[test]
    fn ideal_has_zero_dnl_inl() {
        let flash = FlashAdc::ideal(6, 1.0);
        assert!(flash.dnl_lsb().iter().all(|d| d.abs() < 1e-9));
        assert!(flash.inl_lsb().iter().all(|d| d.abs() < 1e-9));
    }

    #[test]
    fn offsets_create_dnl() {
        let mut rng = Rand::new(2);
        let flash = FlashAdc::with_offsets(6, 1.0, 0.005, &mut rng);
        let max_dnl = flash
            .dnl_lsb()
            .iter()
            .fold(0.0f64, |m, d| m.max(d.abs()));
        assert!(max_dnl > 0.01, "offsets should show up in DNL: {max_dnl}");
    }

    #[test]
    fn offsets_degrade_but_do_not_break() {
        // With moderate comparator offset the converter still roughly tracks.
        let mut rng = Rand::new(3);
        let flash = FlashAdc::with_offsets(5, 1.0, 0.01, &mut rng);
        let n = 8192;
        let x: Vec<f64> = (0..n)
            .map(|i| 0.9 * (std::f64::consts::TAU * 0.01234 * i as f64).sin())
            .collect();
        let y = flash.convert_block(&x);
        let err: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64;
        let sig: f64 = x.iter().map(|v| v * v).sum::<f64>() / n as f64;
        let snr = 10.0 * (sig / err).log10();
        // Ideal 5-bit: ~31.9 dB. With offsets allow down to 24 dB.
        assert!(snr > 24.0 && snr < 33.0, "snr {snr}");
    }

    #[test]
    fn deterministic_construction() {
        let a = FlashAdc::with_offsets(4, 1.0, 0.01, &mut Rand::new(7));
        let b = FlashAdc::with_offsets(4, 1.0, 0.01, &mut Rand::new(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "flash bits")]
    fn too_many_bits_panics() {
        FlashAdc::ideal(12, 1.0);
    }
}
