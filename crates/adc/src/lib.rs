//! # uwb-adc — data-converter models
//!
//! The converters the two transceivers rely on:
//!
//! * [`Quantizer`] — ideal mid-rise quantizer at any resolution (for the
//!   1-bit vs 4-bit sufficiency study of paper §1)
//! * [`FlashAdc`] — comparator bank with offset-induced INL/DNL
//! * [`SarAdc`] — the gen2 receiver's 5-bit successive-approximation
//!   converter with capacitor mismatch (paper Fig. 3)
//! * [`InterleavedAdc`] — the gen1 4-way time-interleaved 2 GSps flash with
//!   offset/gain/skew mismatch (paper Fig. 1)
//! * [`jitter`] — aperture jitter
//! * [`dither`] — rectangular/TPDF dither (the mechanism behind the 1-bit
//!   regime)
//! * [`metrics`] — SNDR / ENOB / SFDR sine-test metrology
//!
//! # Example: the paper's 1-bit regime
//!
//! ```
//! use uwb_adc::Quantizer;
//!
//! let comparator = Quantizer::new(1, 1.0);
//! // A 1-bit converter keeps only the sign.
//! assert_eq!(comparator.quantize(0.3), 0.5);
//! assert_eq!(comparator.quantize(-0.7), -0.5);
//! ```

#![warn(missing_docs)]

pub mod dither;
pub mod flash;
pub mod interleave;
pub mod jitter;
pub mod metrics;
pub mod quantizer;
pub mod sar;

pub use dither::{quantize_dithered, Dither};
pub use flash::FlashAdc;
pub use interleave::{InterleaveMismatch, InterleavedAdc};
pub use metrics::{sine_test, SineTestResult};
pub use quantizer::Quantizer;
pub use sar::SarAdc;
