//! Aperture / sampling-clock jitter.
//!
//! At the paper's rates (>500 MSps on >500 MHz-wide signals) clock jitter is
//! a first-order ADC error: SNR from jitter alone is
//! `−20 log10(2π f_in σ_t)`, independent of resolution.

use uwb_dsp::Complex;
use uwb_sim::rng::Rand;

/// Applies random sampling-time jitter to a real signal using first-order
/// (derivative) interpolation: `x(t+δ) ≈ x(t) + δ x'(t)`.
///
/// `sigma_s` is the RMS jitter in seconds; `fs_hz` the nominal sample rate.
pub fn apply_jitter_real(signal: &[f64], sigma_s: f64, fs_hz: f64, rng: &mut Rand) -> Vec<f64> {
    if sigma_s <= 0.0 || signal.len() < 3 {
        return signal.to_vec();
    }
    let dt = 1.0 / fs_hz;
    let n = signal.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let deriv = if i > 0 && i + 1 < n {
            (signal[i + 1] - signal[i - 1]) / (2.0 * dt)
        } else {
            0.0
        };
        out.push(signal[i] + sigma_s * rng.gaussian() * deriv);
    }
    out
}

/// Complex-signal variant of [`apply_jitter_real`] (common clock for I and
/// Q, as in a shared sample-and-hold).
pub fn apply_jitter_complex(
    signal: &[Complex],
    sigma_s: f64,
    fs_hz: f64,
    rng: &mut Rand,
) -> Vec<Complex> {
    if sigma_s <= 0.0 || signal.len() < 3 {
        return signal.to_vec();
    }
    let dt = 1.0 / fs_hz;
    let n = signal.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let deriv = if i > 0 && i + 1 < n {
            (signal[i + 1] - signal[i - 1]) * (1.0 / (2.0 * dt))
        } else {
            Complex::ZERO
        };
        out.push(signal[i] + deriv * (sigma_s * rng.gaussian()));
    }
    out
}

/// Theoretical jitter-limited SNR in dB for a sinusoid at `f_in_hz` with RMS
/// jitter `sigma_s`: `−20 log10(2π f σ)`.
pub fn jitter_snr_db(f_in_hz: f64, sigma_s: f64) -> f64 {
    -20.0 * (std::f64::consts::TAU * f_in_hz * sigma_s).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jitter_passthrough() {
        let mut rng = Rand::new(1);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(apply_jitter_real(&x, 0.0, 1e9, &mut rng), x);
    }

    #[test]
    fn measured_snr_matches_theory() {
        let mut rng = Rand::new(2);
        let fs = 8e9;
        let f_in = 1.0e9;
        let sigma = 2e-12; // 2 ps RMS
        let n = 65_536;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f_in * i as f64 / fs).sin())
            .collect();
        let y = apply_jitter_real(&x, sigma, fs, &mut rng);
        let err: f64 = x[1..n - 1]
            .iter()
            .zip(&y[1..n - 1])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / (n - 2) as f64;
        let sig: f64 = 0.5;
        let snr = 10.0 * (sig / err).log10();
        let theory = jitter_snr_db(f_in, sigma);
        assert!((snr - theory).abs() < 1.5, "measured {snr} vs theory {theory}");
    }

    #[test]
    fn error_scales_with_input_frequency() {
        let mut rng = Rand::new(3);
        let fs = 8e9;
        let sigma = 5e-12;
        let n = 16_384;
        let err_at = |f_in: f64, rng: &mut Rand| {
            let x: Vec<f64> = (0..n)
                .map(|i| (std::f64::consts::TAU * f_in * i as f64 / fs).sin())
                .collect();
            let y = apply_jitter_real(&x, sigma, fs, rng);
            x[1..n - 1]
                .iter()
                .zip(&y[1..n - 1])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        let low = err_at(0.1e9, &mut rng);
        let high = err_at(1.6e9, &mut rng);
        // 16x frequency -> ~256x error power.
        assert!(high / low > 100.0, "{}", high / low);
    }

    #[test]
    fn complex_variant_consistent() {
        let mut rng_r = Rand::new(4);
        let mut rng_c = Rand::new(4);
        let fs = 1e9;
        let sigma = 10e-12;
        let xr: Vec<f64> = (0..256)
            .map(|i| (std::f64::consts::TAU * 0.05 * i as f64).sin())
            .collect();
        let xc: Vec<Complex> = xr.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let yr = apply_jitter_real(&xr, sigma, fs, &mut rng_r);
        let yc = apply_jitter_complex(&xc, sigma, fs, &mut rng_c);
        for (a, b) in yr.iter().zip(&yc) {
            assert!((a - b.re).abs() < 1e-12);
        }
    }

    #[test]
    fn theory_reference_value() {
        // 1 GHz input, 1 ps jitter: -20log10(2*pi*1e9*1e-12) = 44.0 dB.
        let snr = jitter_snr_db(1e9, 1e-12);
        assert!((snr - 44.04).abs() < 0.1, "{snr}");
    }
}
