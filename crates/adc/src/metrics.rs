//! Converter metrology: SNDR / ENOB / SFDR from a sine-wave test.

use uwb_dsp::psd::periodogram_real;
use uwb_dsp::Window;

/// Result of a single-tone converter test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SineTestResult {
    /// Signal-to-noise-and-distortion ratio in dB.
    pub sndr_db: f64,
    /// Effective number of bits: `(SNDR − 1.76) / 6.02`.
    pub enob: f64,
    /// Spurious-free dynamic range in dB (carrier to strongest spur).
    pub sfdr_db: f64,
    /// The detected carrier frequency in hertz.
    pub carrier_hz: f64,
}

/// Runs a single-tone test: feeds the reference `input` (the ideal sine) and
/// the converter's `output`, computes SNDR/ENOB/SFDR from the output
/// spectrum.
///
/// The carrier is located as the strongest positive-frequency bin; a
/// ±`leak_bins` guard band around it is attributed to the signal (window
/// leakage), everything else to noise+distortion.
///
/// # Panics
///
/// Panics if `output` is empty or `fs_hz <= 0`.
pub fn sine_test(output: &[f64], fs_hz: f64, leak_bins: usize) -> SineTestResult {
    assert!(!output.is_empty(), "cannot test an empty record");
    assert!(fs_hz > 0.0, "sample rate must be positive");
    let psd = periodogram_real(output, fs_hz, Window::Blackman);
    let (freqs, vals) = psd.sorted();
    let n = freqs.len();
    // Only positive frequencies, excluding DC region.
    let start = freqs.partition_point(|&f| f <= 0.0);
    let dc_guard = leak_bins.max(1);
    let pos_vals = &vals[start..];
    let pos_freqs = &freqs[start..];
    // Find carrier (skip near-DC bins).
    let mut carrier_idx = dc_guard;
    for i in dc_guard..pos_vals.len() {
        if pos_vals[i] > pos_vals[carrier_idx] {
            carrier_idx = i;
        }
    }
    let lo = carrier_idx.saturating_sub(leak_bins);
    let hi = (carrier_idx + leak_bins + 1).min(pos_vals.len());
    let signal_power: f64 = pos_vals[lo..hi].iter().sum();
    let mut noise_power = 0.0;
    let mut max_spur = 0.0f64;
    for (i, &v) in pos_vals.iter().enumerate() {
        if i < dc_guard {
            continue; // DC region excluded
        }
        if i >= lo && i < hi {
            continue; // carrier region
        }
        noise_power += v;
        max_spur = max_spur.max(v);
    }
    let _ = n;
    let sndr_db = 10.0 * (signal_power / noise_power.max(1e-300)).log10();
    let sfdr_db = 10.0 * (pos_vals[carrier_idx] / max_spur.max(1e-300)).log10();
    SineTestResult {
        sndr_db,
        enob: (sndr_db - 1.76) / 6.02,
        sfdr_db,
        carrier_hz: pos_freqs[carrier_idx],
    }
}

/// Generates the standard coherent test sine: amplitude `amp`, an
/// odd number of cycles over `n` samples so every code is exercised.
pub fn test_sine(n: usize, cycles: usize, amp: f64) -> Vec<f64> {
    let f = cycles as f64 / n as f64;
    (0..n)
        .map(|i| amp * (std::f64::consts::TAU * f * i as f64).sin())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::Quantizer;

    #[test]
    fn enob_close_to_nominal_bits() {
        for bits in [4u32, 6, 8] {
            let q = Quantizer::new(bits, 1.0);
            let x = test_sine(16_384, 127, 0.99);
            let y = q.quantize_block(&x);
            let r = sine_test(&y, 1e9, 8);
            assert!(
                (r.enob - bits as f64).abs() < 0.7,
                "{bits}-bit ENOB {}",
                r.enob
            );
        }
    }

    #[test]
    fn carrier_frequency_detected() {
        let x = test_sine(8192, 129, 0.9);
        let q = Quantizer::new(8, 1.0);
        let y = q.quantize_block(&x);
        let r = sine_test(&y, 8192.0, 8); // fs = n -> bin = cycles
        assert!((r.carrier_hz - 129.0).abs() < 2.0, "{}", r.carrier_hz);
    }

    #[test]
    fn clean_sine_has_huge_sndr() {
        let x = test_sine(8192, 127, 0.9);
        let r = sine_test(&x, 1e6, 8);
        assert!(r.sndr_db > 80.0, "{}", r.sndr_db);
        assert!(r.sfdr_db > 60.0, "{}", r.sfdr_db);
    }

    #[test]
    fn distortion_lowers_sfdr() {
        // Add third harmonic distortion.
        let n = 8192;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * 127.0 * i as f64 / n as f64;
                0.9 * t.sin() + 0.01 * (3.0 * t).sin()
            })
            .collect();
        let r = sine_test(&x, n as f64, 8);
        // Carrier/spur = 0.9/0.01 => ~39 dB.
        assert!((r.sfdr_db - 39.1).abs() < 2.0, "{}", r.sfdr_db);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_record_panics() {
        sine_test(&[], 1e9, 4);
    }
}
