//! Uniform quantization — the core of every converter model here.
//!
//! The paper's §1 claim under test: "A 1-bit analog-to-digital converter in a
//! noise limited regime, and a 4-bit ADC in a narrowband interferer regime
//! are sufficient." These models let the receiver run at any resolution.

use uwb_dsp::Complex;

/// A mid-rise uniform quantizer with saturation.
///
/// Full scale is ±`full_scale`; `bits` gives `2^bits` levels. Codes are
/// symmetric around zero (mid-rise: no code at exactly 0, which matches
/// flash/SAR converters with differential inputs).
///
/// # Examples
///
/// ```
/// use uwb_adc::Quantizer;
/// let q = Quantizer::new(1, 1.0); // the paper's 1-bit case: a comparator
/// assert_eq!(q.quantize(0.7), 0.5);
/// assert_eq!(q.quantize(-0.2), -0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    full_scale: f64,
}

impl Quantizer {
    /// Creates a quantizer with the given resolution and full-scale range.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24, or `full_scale <= 0`.
    pub fn new(bits: u32, full_scale: f64) -> Self {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        assert!(full_scale > 0.0, "full scale must be positive");
        Quantizer { bits, full_scale }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale amplitude.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Number of levels, `2^bits`.
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// The LSB step size, `2·FS / 2^bits`.
    #[inline]
    pub fn step(&self) -> f64 {
        2.0 * self.full_scale / self.levels() as f64
    }

    /// Quantizes one sample to the reconstruction level (mid-rise, clipped).
    #[inline]
    pub fn quantize(&self, x: f64) -> f64 {
        let step = self.step();
        let half_levels = (self.levels() / 2) as f64;
        // Mid-rise: code k covers [k*step, (k+1)*step), reconstruct at center.
        let k = (x / step).floor().clamp(-half_levels, half_levels - 1.0);
        (k + 0.5) * step
    }

    /// Fused AGC + conversion sweep: quantizes `input[i] * gain` on both
    /// rails into `out` — the receiver front end's digitize inner loop as
    /// one branch-free block pass (see [`uwb_dsp::simd`]).
    ///
    /// Bit-identical to `quantize(z.re * gain)` / `quantize(z.im * gain)`
    /// per sample: the kernel keeps the same divide-by-`step` arithmetic
    /// (locked down by a parity test).
    pub fn quantize_scaled_into(&self, input: &[Complex], gain: f64, out: &mut Vec<Complex>) {
        let half_levels = (self.levels() / 2) as f64;
        uwb_dsp::simd::quantize_scaled_into(
            input,
            gain,
            self.step(),
            -half_levels,
            half_levels - 1.0,
            out,
        );
    }

    /// [`Quantizer::quantize_scaled_into`] that *appends* to `out` instead
    /// of replacing it (same per-sample arithmetic), so the batched runtime
    /// can digitize straight into a flat multi-trial lane buffer.
    pub fn quantize_scaled_append(&self, input: &[Complex], gain: f64, out: &mut Vec<Complex>) {
        let half_levels = (self.levels() / 2) as f64;
        uwb_dsp::simd::quantize_scaled_append(
            input,
            gain,
            self.step(),
            -half_levels,
            half_levels - 1.0,
            out,
        );
    }

    /// Quantizes to the integer code in `[-2^(b-1), 2^(b-1) - 1]`.
    pub fn quantize_code(&self, x: f64) -> i32 {
        let step = self.step();
        let half_levels = (self.levels() / 2) as f64;
        (x / step).floor().clamp(-half_levels, half_levels - 1.0) as i32
    }

    /// Reconstruction level for a code from [`quantize_code`].
    ///
    /// [`quantize_code`]: Quantizer::quantize_code
    pub fn reconstruct(&self, code: i32) -> f64 {
        (code as f64 + 0.5) * self.step()
    }

    /// Quantizes a real block.
    pub fn quantize_block(&self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Quantizes I and Q independently (two converters, as in paper Fig. 3's
    /// "two 5-bit SAR ADCs").
    pub fn quantize_complex(&self, input: &[Complex]) -> Vec<Complex> {
        input
            .iter()
            .map(|&z| Complex::new(self.quantize(z.re), self.quantize(z.im)))
            .collect()
    }

    /// Theoretical SQNR for a full-scale sinusoid: `6.02·bits + 1.76` dB.
    pub fn ideal_sqnr_db(&self) -> f64 {
        6.02 * self.bits as f64 + 1.76
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_bit_is_sign() {
        let q = Quantizer::new(1, 1.0);
        assert_eq!(q.quantize(0.001), 0.5);
        assert_eq!(q.quantize(100.0), 0.5);
        assert_eq!(q.quantize(-0.001), -0.5);
        assert_eq!(q.levels(), 2);
        assert_eq!(q.step(), 1.0);
    }

    #[test]
    fn codes_and_reconstruction() {
        let q = Quantizer::new(3, 1.0); // 8 levels, step 0.25
        assert_eq!(q.quantize_code(0.0), 0);
        assert_eq!(q.quantize_code(0.30), 1);
        assert_eq!(q.quantize_code(-0.30), -2);
        assert_eq!(q.quantize_code(10.0), 3); // clipped top code
        assert_eq!(q.quantize_code(-10.0), -4); // clipped bottom code
        assert_eq!(q.reconstruct(0), 0.125);
        assert!((q.reconstruct(q.quantize_code(0.3)) - q.quantize(0.3)).abs() < 1e-12);
    }

    #[test]
    fn quantization_error_bounded_in_range() {
        let q = Quantizer::new(5, 1.0); // the gen2 SAR resolution
        let step = q.step();
        for i in -100..100 {
            let x = i as f64 / 100.0 * 0.99;
            let e = (q.quantize(x) - x).abs();
            assert!(e <= step / 2.0 + 1e-12, "x={x} err={e}");
        }
    }

    #[test]
    fn clipping_beyond_full_scale() {
        let q = Quantizer::new(4, 1.0);
        let top = q.quantize(0.999);
        assert_eq!(q.quantize(5.0), top);
        let bottom = q.quantize(-0.999);
        assert_eq!(q.quantize(-5.0), bottom);
    }

    #[test]
    fn measured_sqnr_matches_ideal() {
        for bits in [4u32, 6, 8] {
            let q = Quantizer::new(bits, 1.0);
            let n = 65_536;
            // Full-scale sine, incommensurate frequency to exercise all codes.
            let x: Vec<f64> = (0..n)
                .map(|i| 0.999 * (std::f64::consts::TAU * 0.0123456 * i as f64).sin())
                .collect();
            let y = q.quantize_block(&x);
            let sig_pow: f64 = x.iter().map(|v| v * v).sum::<f64>() / n as f64;
            let err_pow: f64 = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / n as f64;
            let sqnr = 10.0 * (sig_pow / err_pow).log10();
            let ideal = q.ideal_sqnr_db();
            assert!(
                (sqnr - ideal).abs() < 1.5,
                "{bits}-bit: measured {sqnr:.2} vs ideal {ideal:.2}"
            );
        }
    }

    #[test]
    fn complex_quantization_independent_rails() {
        let q = Quantizer::new(2, 1.0);
        let z = Complex::new(0.3, -0.8);
        let out = q.quantize_complex(&[z])[0];
        assert_eq!(out.re, q.quantize(0.3));
        assert_eq!(out.im, q.quantize(-0.8));
    }

    #[test]
    fn mid_rise_has_no_zero_level() {
        let q = Quantizer::new(4, 1.0);
        for i in -50..50 {
            let x = i as f64 / 50.0;
            assert!(q.quantize(x).abs() >= q.step() / 2.0 - 1e-12);
        }
    }

    #[test]
    fn quantize_scaled_matches_scalar_bitwise() {
        // The fused sweep must agree bit-for-bit with the per-sample path
        // for every resolution, including the saturating codes.
        for bits in [1u32, 4, 5, 12] {
            let q = Quantizer::new(bits, 1.0);
            let gain = 0.733;
            let input: Vec<Complex> = (-300..300)
                .map(|i| Complex::new(i as f64 / 100.0, (i as f64 * 0.017).sin() * 3.0))
                .collect();
            let mut out = Vec::new();
            q.quantize_scaled_into(&input, gain, &mut out);
            assert_eq!(out.len(), input.len());
            for (z, o) in input.iter().zip(&out) {
                let want = Complex::new(q.quantize(z.re * gain), q.quantize(z.im * gain));
                assert_eq!(*o, want, "bits={bits} z={z}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn zero_bits_panics() {
        Quantizer::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "full scale")]
    fn bad_full_scale_panics() {
        Quantizer::new(4, -1.0);
    }
}
