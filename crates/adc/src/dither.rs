//! Dithering for low-resolution conversion.
//!
//! A 1-bit converter only works in the paper's "noise limited regime"
//! because the channel noise itself dithers the comparator: the average of
//! many sign decisions becomes proportional to the signal. When the input
//! is too clean (or the wanted signal is far below one LSB of a multi-bit
//! converter), adding known dither before quantization restores that
//! linearity. This module provides the standard rectangular and triangular
//! (TPDF) dither generators.

use crate::quantizer::Quantizer;
use uwb_dsp::Complex;
use uwb_sim::Rand;

/// Dither amplitude specification, in LSBs of the target quantizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dither {
    /// No dither.
    None,
    /// Rectangular PDF dither, ±`amplitude_lsb`/2 peak.
    Rectangular {
        /// Peak-to-peak amplitude in LSBs.
        amplitude_lsb: f64,
    },
    /// Triangular PDF dither (sum of two rectangular draws), ±`amplitude_lsb`
    /// peak — the classic choice that makes the first two error moments
    /// signal-independent.
    Triangular {
        /// Peak amplitude in LSBs (total spread is twice this).
        amplitude_lsb: f64,
    },
}

impl Dither {
    /// The standard 1-LSB TPDF dither.
    pub fn tpdf() -> Self {
        Dither::Triangular { amplitude_lsb: 1.0 }
    }

    /// Draws one dither sample for the given quantizer.
    pub fn sample(&self, quantizer: &Quantizer, rng: &mut Rand) -> f64 {
        let lsb = quantizer.step();
        match *self {
            Dither::None => 0.0,
            Dither::Rectangular { amplitude_lsb } => {
                (rng.uniform() - 0.5) * amplitude_lsb * lsb
            }
            Dither::Triangular { amplitude_lsb } => {
                (rng.uniform() - rng.uniform()) * amplitude_lsb * lsb
            }
        }
    }
}

/// Quantizes a real block with additive dither (non-subtractive).
pub fn quantize_dithered(
    quantizer: &Quantizer,
    input: &[f64],
    dither: Dither,
    rng: &mut Rand,
) -> Vec<f64> {
    input
        .iter()
        .map(|&x| quantizer.quantize(x + dither.sample(quantizer, rng)))
        .collect()
}

/// Complex variant of [`quantize_dithered`] (independent dither per rail).
pub fn quantize_dithered_complex(
    quantizer: &Quantizer,
    input: &[Complex],
    dither: Dither,
    rng: &mut Rand,
) -> Vec<Complex> {
    input
        .iter()
        .map(|&z| {
            Complex::new(
                quantizer.quantize(z.re + dither.sample(quantizer, rng)),
                quantizer.quantize(z.im + dither.sample(quantizer, rng)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_plain_quantization() {
        let q = Quantizer::new(4, 1.0);
        let mut rng = Rand::new(1);
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin() * 0.9).collect();
        assert_eq!(
            quantize_dithered(&q, &x, Dither::None, &mut rng),
            q.quantize_block(&x)
        );
    }

    #[test]
    fn dither_amplitude_bounds() {
        let q = Quantizer::new(4, 1.0);
        let mut rng = Rand::new(2);
        let lsb = q.step();
        for _ in 0..1000 {
            let r = Dither::Rectangular { amplitude_lsb: 1.0 }.sample(&q, &mut rng);
            assert!(r.abs() <= lsb / 2.0 + 1e-12);
            let t = Dither::tpdf().sample(&q, &mut rng);
            assert!(t.abs() <= lsb + 1e-12);
        }
    }

    #[test]
    fn dither_linearizes_subthreshold_signal() {
        // A DC level at 1/4 LSB is invisible to an undithered quantizer but
        // recoverable (by averaging) with TPDF dither.
        let q = Quantizer::new(3, 1.0);
        let mut rng = Rand::new(3);
        let level = q.step() / 4.0 + q.step() / 2.0; // sits inside one bin
        let x = vec![level; 200_000];

        let plain = quantize_dithered(&q, &x, Dither::None, &mut rng);
        let plain_mean: f64 = plain.iter().sum::<f64>() / plain.len() as f64;
        // Undithered: stuck at the bin's reconstruction level.
        let bias_plain = (plain_mean - level).abs();

        let dithered = quantize_dithered(&q, &x, Dither::tpdf(), &mut rng);
        let dith_mean: f64 = dithered.iter().sum::<f64>() / dithered.len() as f64;
        let bias_dith = (dith_mean - level).abs();

        assert!(
            bias_dith < bias_plain / 5.0,
            "dithered bias {bias_dith} vs plain {bias_plain}"
        );
    }

    #[test]
    fn one_bit_sine_average_tracks_amplitude() {
        // The mechanism behind the paper's 1-bit claim: with dither (or
        // noise), the averaged comparator output is proportional to the
        // signal, so correlation receivers still work.
        let q = Quantizer::new(1, 1.0);
        let mut rng = Rand::new(4);
        let amp = 0.2; // well below the ±0.5 reconstruction levels
        let n = 100_000;
        let x: Vec<f64> = (0..n)
            .map(|i| amp * (std::f64::consts::TAU * 0.01 * i as f64).sin())
            .collect();
        let dithered = quantize_dithered(
            &q,
            &x,
            Dither::Triangular { amplitude_lsb: 0.6 },
            &mut rng,
        );
        // Correlate with the reference sine: gain should be near linear.
        let num: f64 = x.iter().zip(&dithered).map(|(a, b)| a * b).sum();
        let den: f64 = x.iter().map(|a| a * a).sum();
        let gain = num / den;
        assert!(gain > 0.5, "correlation gain {gain}");
    }

    #[test]
    fn complex_dither_independent_rails() {
        let q = Quantizer::new(2, 1.0);
        let mut rng = Rand::new(5);
        let z = vec![Complex::new(0.1, -0.1); 64];
        let out = quantize_dithered_complex(&q, &z, Dither::tpdf(), &mut rng);
        assert_eq!(out.len(), 64);
        // Dither must actually vary the codes.
        let first = out[0];
        assert!(out.iter().any(|&v| v != first));
    }
}
