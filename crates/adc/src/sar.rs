//! Successive-approximation-register ADC model.
//!
//! Paper Fig. 3 digitizes I and Q with "two 5-bit successive approximation
//! register ADCs". A SAR converter performs a binary search against a
//! capacitive DAC; its static accuracy is set by the matching of the binary-
//! weighted capacitors. This model implements the bit-cycling loop explicitly
//! with per-bit weight errors, plus comparator noise.

use uwb_dsp::Complex;
use uwb_sim::rng::Rand;

/// A SAR ADC with capacitor-mismatch weight errors and comparator noise.
#[derive(Debug, Clone, PartialEq)]
pub struct SarAdc {
    bits: u32,
    full_scale: f64,
    /// Actual DAC weight of each bit, MSB first. Ideal: `FS, FS/2, FS/4…`.
    weights: Vec<f64>,
    /// Comparator input-referred noise sigma (volts).
    comparator_noise: f64,
}

impl SarAdc {
    /// An ideal SAR converter.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16, or `full_scale <= 0`.
    pub fn ideal(bits: u32, full_scale: f64) -> Self {
        SarAdc::with_mismatch(bits, full_scale, 0.0, 0.0, &mut Rand::new(0))
    }

    /// The paper's converter: 5 bits.
    pub fn gen2_default() -> Self {
        SarAdc::ideal(5, 1.0)
    }

    /// A SAR with relative capacitor mismatch `sigma_rel` (per-bit Gaussian,
    /// relative to the bit weight) and comparator noise.
    ///
    /// # Panics
    ///
    /// Panics on invalid `bits`/`full_scale` as for [`SarAdc::ideal`].
    pub fn with_mismatch(
        bits: u32,
        full_scale: f64,
        sigma_rel: f64,
        comparator_noise: f64,
        rng: &mut Rand,
    ) -> Self {
        assert!((1..=16).contains(&bits), "SAR bits must be in 1..=16");
        assert!(full_scale > 0.0, "full scale must be positive");
        let weights = (0..bits)
            .map(|b| {
                let ideal = full_scale / (1u64 << b) as f64;
                ideal * (1.0 + sigma_rel * rng.gaussian())
            })
            .collect();
        SarAdc {
            bits,
            full_scale,
            weights,
            comparator_noise,
        }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale amplitude.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Converts one sample by explicit SAR bit cycling. Returns the signed
    /// reconstruction amplitude.
    ///
    /// The comparator noise (if any) is redrawn on every bit decision, which
    /// is how real SAR metastability/noise behaves — early (MSB) errors are
    /// unrecoverable.
    pub fn convert(&self, x: f64, rng: &mut Rand) -> f64 {
        let code = self.convert_code(x, rng);
        self.reconstruct(code)
    }

    /// Converts one sample to its unsigned output code `[0, 2^bits)`.
    pub fn convert_code(&self, x: f64, rng: &mut Rand) -> u32 {
        // Binary search: start at mid-scale, add/subtract halving weights.
        let mut code = 0u32;
        let mut dac = -self.full_scale; // bottom of range
        for (b, &w) in self.weights.iter().enumerate() {
            let trial = dac + w;
            let noise = if self.comparator_noise > 0.0 {
                self.comparator_noise * rng.gaussian()
            } else {
                0.0
            };
            if x + noise >= trial {
                dac = trial;
                code |= 1 << (self.bits - 1 - b as u32);
            }
        }
        code
    }

    /// Reconstruction amplitude for an output code.
    pub fn reconstruct(&self, code: u32) -> f64 {
        let mut v = -self.full_scale;
        for b in 0..self.bits {
            if code & (1 << (self.bits - 1 - b)) != 0 {
                v += self.weights[b as usize];
            }
        }
        // Half-LSB recentering.
        v + self.full_scale / (1u64 << self.bits) as f64
    }

    /// Converts a real block.
    pub fn convert_block(&self, input: &[f64], rng: &mut Rand) -> Vec<f64> {
        input.iter().map(|&x| self.convert(x, rng)).collect()
    }

    /// Converts a complex block with two independent converters (I and Q),
    /// matching Fig. 3's "two 5-bit SAR ADCs". The two converters share this
    /// model instance (same mismatch draw) but use independent noise.
    pub fn convert_complex(&self, input: &[Complex], rng: &mut Rand) -> Vec<Complex> {
        input
            .iter()
            .map(|&z| Complex::new(self.convert(z.re, rng), self.convert(z.im, rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sar_matches_midrise_quantizer() {
        let sar = SarAdc::ideal(5, 1.0);
        let q = crate::quantizer::Quantizer::new(5, 1.0);
        let mut rng = Rand::new(1);
        for i in -100..=100 {
            let x = i as f64 / 100.0 * 0.99;
            let a = sar.convert(x, &mut rng);
            let b = q.quantize(x);
            assert!((a - b).abs() < 1e-12, "x={x}: sar {a} vs q {b}");
        }
    }

    #[test]
    fn code_range_and_monotonicity() {
        let sar = SarAdc::gen2_default();
        let mut rng = Rand::new(2);
        assert_eq!(sar.convert_code(-5.0, &mut rng), 0);
        assert_eq!(sar.convert_code(5.0, &mut rng), 31);
        let mut prev = 0;
        for i in -100..=100 {
            let c = sar.convert_code(i as f64 / 100.0, &mut rng);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn reconstruct_round_trip() {
        let sar = SarAdc::ideal(5, 1.0);
        let mut rng = Rand::new(3);
        for code in 0..32u32 {
            let v = sar.reconstruct(code);
            assert_eq!(sar.convert_code(v, &mut rng), code);
        }
    }

    #[test]
    fn mismatch_degrades_linearity() {
        let mut rng = Rand::new(4);
        let ideal = SarAdc::ideal(8, 1.0);
        // Mismatch errors are partially self-consistent (the same weights are
        // used for conversion and reconstruction), so a large sigma is needed
        // for a visible SNDR hit.
        let real = SarAdc::with_mismatch(8, 1.0, 0.10, 0.0, &mut rng);
        let n = 8192;
        let x: Vec<f64> = (0..n)
            .map(|i| 0.95 * (std::f64::consts::TAU * 0.00987 * i as f64).sin())
            .collect();
        let snr = |adc: &SarAdc| {
            let mut r = Rand::new(5);
            let y = adc.convert_block(&x, &mut r);
            let err: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
            let sig: f64 = x.iter().map(|v| v * v).sum();
            10.0 * (sig / err).log10()
        };
        let snr_ideal = snr(&ideal);
        let snr_real = snr(&real);
        assert!(snr_ideal > 47.0, "ideal 8-bit {snr_ideal}");
        assert!(snr_real < snr_ideal - 3.0, "{snr_real} vs {snr_ideal}");
    }

    #[test]
    fn comparator_noise_flips_decisions() {
        let mut rng = Rand::new(6);
        let noisy = SarAdc::with_mismatch(5, 1.0, 0.0, 0.05, &mut rng);
        // Input exactly between two codes: noise makes results vary.
        let mut rng2 = Rand::new(7);
        let codes: Vec<u32> = (0..200).map(|_| noisy.convert_code(0.0, &mut rng2)).collect();
        let first = codes[0];
        assert!(codes.iter().any(|&c| c != first), "noise had no effect");
    }

    #[test]
    fn complex_conversion_shape() {
        let sar = SarAdc::gen2_default();
        let mut rng = Rand::new(8);
        let input = vec![Complex::new(0.3, -0.4); 10];
        let out = sar.convert_complex(&input, &mut rng);
        assert_eq!(out.len(), 10);
        assert!((out[0].re - 0.3).abs() < sar.full_scale() / 16.0);
        assert!((out[0].im + 0.4).abs() < sar.full_scale() / 16.0);
    }

    #[test]
    #[should_panic(expected = "SAR bits")]
    fn bad_bits_panics() {
        SarAdc::ideal(0, 1.0);
    }
}
