//! Serde round-trip tests (only built with `--features serde`): link
//! configurations and experiment results must survive serialization, so
//! experiment sweeps can be described in JSON and results archived.

#![cfg(feature = "serde")]

use uwb_phy::{Channel, ConvCode, Gen2Config, Header, Modulation};

#[test]
fn config_round_trips_through_json() {
    let mut cfg = Gen2Config::nominal_100mbps();
    cfg.fec = Some(ConvCode::k7());
    cfg.pulses_per_bit = 4;
    cfg.channel = Channel::new(11).unwrap();
    cfg.modulation = Modulation::Pam4;
    cfg.mlse_taps = 3;
    cfg.carrier_tracking = true;
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: Gen2Config = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
    // The JSON is human-meaningful (spot checks).
    assert!(json.contains("pulses_per_bit"));
    assert!(json.contains("carrier_tracking"));
}

#[test]
fn header_round_trips() {
    let h = Header {
        payload_len: 777,
        modulation: Modulation::Ppm2,
        fec: true,
    };
    let json = serde_json::to_string(&h).unwrap();
    let back: Header = serde_json::from_str(&json).unwrap();
    assert_eq!(back, h);
}

#[test]
fn channel_realization_round_trips() {
    use uwb_sim::{ChannelModel, ChannelRealization, Rand};
    let ch = ChannelRealization::generate(ChannelModel::Cm2, &mut Rand::new(3));
    let json = serde_json::to_string(&ch).unwrap();
    let back: ChannelRealization = serde_json::from_str(&json).unwrap();
    assert_eq!(back, ch);
    assert!((back.energy() - 1.0).abs() < 1e-9);
}

#[test]
fn power_breakdown_serializes() {
    use uwb_phy::PowerModel;
    let bd = PowerModel::cmos180().breakdown(&Gen2Config::nominal_100mbps());
    let json = serde_json::to_string(&bd).unwrap();
    let back: uwb_phy::PowerBreakdown = serde_json::from_str(&json).unwrap();
    assert_eq!(back, bd);
    assert!(json.contains("matched filter"));
}
