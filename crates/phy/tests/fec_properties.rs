//! Property-based tests for the convolutional codec (`uwb_phy::fec`).
//!
//! Complements the basic roundtrip in `tests/properties.rs` with the
//! structural invariants the MAC/link layers rely on: trellis termination,
//! hard/soft decoder agreement when every sign is right, and the scale
//! invariance of the correlation metric.

use proptest::prelude::*;
use uwb_phy::fec::{bits_to_bytes, bytes_to_bits, ConvCode};

fn any_code() -> impl Strategy<Value = ConvCode> {
    prop_oneof![Just(ConvCode::k3()), Just(ConvCode::k7())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode is the identity for both built-in codes, via both
    /// the hard and the soft entry point.
    #[test]
    fn roundtrip_hard_and_soft(
        code in any_code(),
        bits in prop::collection::vec(any::<bool>(), 0..256),
    ) {
        let coded = code.encode(&bits);
        prop_assert_eq!(code.decode_hard(&coded), bits.clone());
        let llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b { 4.0 } else { -4.0 })
            .collect();
        prop_assert_eq!(code.decode_soft(&llrs), bits);
    }

    /// Trellis termination: the `K − 1` zero tail drives the encoder back
    /// to the zero state, so (a) output length is exactly
    /// `2 * (n + K − 1)`, (b) explicitly appending the tail to the message
    /// reproduces the same codeword followed by all-zero pairs, and
    /// (c) the all-zero message maps to the all-zero codeword.
    #[test]
    fn termination_returns_encoder_to_zero_state(
        code in any_code(),
        bits in prop::collection::vec(any::<bool>(), 0..128),
        zero_len in 0usize..64,
    ) {
        let k = code.constraint_length as usize;
        let coded = code.encode(&bits);
        prop_assert_eq!(coded.len(), 2 * (bits.len() + k - 1));

        // Append the tail by hand: the first 2*(n + K − 1) coded bits must
        // be identical (same inputs), and the extra 2*(K − 1) bits must be
        // zero because the shift register is already flushed.
        let mut extended = bits.clone();
        extended.extend(std::iter::repeat_n(false, k - 1));
        let coded_ext = code.encode(&extended);
        prop_assert_eq!(&coded_ext[..coded.len()], &coded[..]);
        prop_assert!(
            coded_ext[coded.len()..].iter().all(|&b| !b),
            "a flushed encoder fed zeros must emit zeros"
        );

        // Linearity corner: zero in → zero out.
        let zeros = vec![false; zero_len];
        prop_assert!(code.encode(&zeros).iter().all(|&b| !b));
    }

    /// With every soft input carrying the correct sign and a magnitude
    /// bounded away from zero, soft and hard decoding must agree (and both
    /// recover the message): any competing codeword differs in at least
    /// `d_free` positions and loses twice the magnitude in each.
    #[test]
    fn hard_and_soft_agree_at_high_snr(
        code in any_code(),
        bits in prop::collection::vec(any::<bool>(), 1..160),
        noise in prop::collection::vec(-0.9f64..0.9, 2 * (160 + 6)),
    ) {
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .zip(&noise)
            .map(|(&b, &n)| (if b { 4.0 } else { -4.0 }) + n)
            .collect();
        prop_assert_eq!(llrs.len(), coded.len(), "noise pool must cover the frame");
        let hard_in: Vec<bool> = llrs.iter().map(|&l| l > 0.0).collect();
        prop_assert_eq!(code.decode_hard(&hard_in), bits.clone());
        prop_assert_eq!(code.decode_soft(&llrs), bits);
    }

    /// The Viterbi correlation metric is scale invariant: multiplying all
    /// soft inputs by a positive gain cannot change the decoded message
    /// (the AGC in front of the demodulator must not matter).
    #[test]
    fn soft_decoding_is_scale_invariant(
        code in any_code(),
        bits in prop::collection::vec(any::<bool>(), 1..96),
        noise in prop::collection::vec(-2.0f64..2.0, 2 * (96 + 6)),
        gain in 0.05f64..20.0,
    ) {
        let coded = code.encode(&bits);
        let llrs: Vec<f64> = coded
            .iter()
            .zip(&noise)
            .map(|(&b, &n)| (if b { 1.0 } else { -1.0 }) + n)
            .collect();
        let scaled: Vec<f64> = llrs.iter().map(|&l| l * gain).collect();
        prop_assert_eq!(code.decode_soft(&llrs), code.decode_soft(&scaled));
    }

    /// Bit/byte packing round-trips on byte boundaries, so FEC payloads can
    /// cross the packer without loss.
    #[test]
    fn bit_byte_packing_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let bits = bytes_to_bits(&bytes);
        prop_assert_eq!(bits.len(), 8 * bytes.len());
        prop_assert_eq!(bits_to_bytes(&bits), bytes);
    }
}
