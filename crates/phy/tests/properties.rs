//! Property-based tests for PHY invariants.

use proptest::prelude::*;
use uwb_dsp::Complex;
use uwb_phy::bandplan::{Channel, CHANNEL_COUNT, CHANNEL_SPACING_MHZ};
use uwb_phy::crc::{crc16_ccitt, crc32_ieee};
use uwb_phy::fec::{bits_to_bytes, bytes_to_bits, ConvCode};
use uwb_phy::modulation::Modulation;
use uwb_phy::packet::{build_frame, decode_payload, Header};
use uwb_phy::pn::Lfsr;
use uwb_phy::scrambler::Scrambler;
use uwb_phy::Gen2Config;

fn any_modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Ook),
        Just(Modulation::Ppm2),
        Just(Modulation::Pam4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Convolutional code round-trips any message.
    #[test]
    fn fec_round_trip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        for code in [ConvCode::k3(), ConvCode::k7()] {
            let coded = code.encode(&bits);
            prop_assert_eq!(
                coded.len(),
                2 * (bits.len() + code.constraint_length as usize - 1)
            );
            prop_assert_eq!(code.decode_hard(&coded), bits.clone());
        }
    }

    /// A single flipped coded bit never breaks K=7 decoding.
    #[test]
    fn fec_k7_corrects_single_error(
        bits in prop::collection::vec(any::<bool>(), 10..100),
        flip_frac in 0.0f64..1.0,
    ) {
        let code = ConvCode::k7();
        let mut coded = code.encode(&bits);
        let idx = ((coded.len() - 1) as f64 * flip_frac) as usize;
        coded[idx] = !coded[idx];
        prop_assert_eq!(code.decode_hard(&coded), bits);
    }

    /// Scrambling is a self-inverse and preserves length.
    #[test]
    fn scrambler_involution(data in prop::collection::vec(any::<u8>(), 0..200), seed in 1u16..0x7FFF) {
        let mut a = Scrambler::new(seed);
        let mut b = Scrambler::new(seed);
        let mut buf = data.clone();
        a.apply_bytes(&mut buf);
        b.apply_bytes(&mut buf);
        prop_assert_eq!(buf, data);
    }

    /// CRC32 detects any single-bit error.
    #[test]
    fn crc32_single_bit(data in prop::collection::vec(any::<u8>(), 1..100), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let c = crc32_ieee(&data);
        let mut corrupted = data.clone();
        let idx = ((data.len() - 1) as f64 * byte_frac) as usize;
        corrupted[idx] ^= 1 << bit;
        prop_assert_ne!(crc32_ieee(&corrupted), c);
    }

    /// CRC16 is deterministic and length-sensitive.
    #[test]
    fn crc16_appending_changes(data in prop::collection::vec(any::<u8>(), 0..50), extra in any::<u8>()) {
        let c1 = crc16_ccitt(&data);
        let mut longer = data.clone();
        longer.push(extra);
        // Not strictly guaranteed for all CRCs/extensions, but true for
        // CCITT-FALSE except when the appended byte "absorbs" the register;
        // assert determinism instead and check mismatch probabilistically.
        prop_assert_eq!(crc16_ccitt(&data), c1);
        let _ = crc16_ccitt(&longer);
    }

    /// Bit/byte packing round-trips on byte boundaries.
    #[test]
    fn bits_bytes_round_trip(data in prop::collection::vec(any::<u8>(), 0..100)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    /// Modulation map/demap round-trips every symbol with arbitrary positive
    /// scaling (AGC-invariance of the decision rules up to OOK/PAM threshold
    /// scale of 1.0 — so only BPSK and PPM are scale-free).
    #[test]
    fn scale_free_modulations(bit in any::<bool>(), scale in 0.05f64..20.0) {
        for m in [Modulation::Bpsk, Modulation::Ppm2] {
            let amps = m.map(&[bit]);
            let slots: Vec<Complex> = amps.iter().map(|&a| Complex::new(a * scale, 0.0)).collect();
            let (decided, _) = m.demap(&slots);
            prop_assert_eq!(decided, vec![bit], "{} at scale {}", m, scale);
        }
    }

    /// Packet frames decode back to the payload for every modulation/spread
    /// combination on a clean channel.
    #[test]
    fn frame_round_trip(
        payload in prop::collection::vec(any::<u8>(), 0..80),
        modulation in any_modulation(),
        ppb in 1usize..4,
    ) {
        let config = Gen2Config {
            modulation,
            pulses_per_bit: ppb,
            ..Gen2Config::nominal_100mbps()
        };
        let frame = build_frame(&payload, &config).unwrap();
        let stats: Vec<Complex> = frame
            .payload
            .iter()
            .map(|&a| Complex::new(a, 0.0))
            .collect();
        let decoded = decode_payload(&stats, payload.len(), &config).unwrap();
        prop_assert_eq!(decoded, payload);
    }

    /// Headers round-trip for all field values.
    #[test]
    fn header_round_trip(len in 0usize..4096, modulation in any_modulation(), fec in any::<bool>()) {
        let h = Header { payload_len: len, modulation, fec };
        prop_assert_eq!(Header::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    /// m-sequences from any supported degree are balanced and period-exact.
    #[test]
    fn msequence_balance(degree in 3u32..13) {
        let n = (1usize << degree) - 1;
        let mut lfsr = Lfsr::msequence(degree);
        let bits = lfsr.bits(n);
        let ones = bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(ones, 1usize << (degree - 1));
        // Next period repeats exactly.
        let again = Lfsr::msequence(degree).bits(n);
        prop_assert_eq!(bits, again);
    }

    /// The channel grid tiles the band monotonically: centers ascend by
    /// exactly one spacing, occupied bands never overlap, and the guard
    /// between neighbours is the spacing minus the occupied bandwidth
    /// (528 − 500 = 28 MHz).
    #[test]
    fn bandplan_edges_tile_without_overlap(i in 0usize..CHANNEL_COUNT - 1) {
        let a = Channel::new(i).unwrap();
        let b = Channel::new(i + 1).unwrap();
        let spacing = b.center().as_hz() - a.center().as_hz();
        prop_assert!((spacing - CHANNEL_SPACING_MHZ * 1e6).abs() < 1e-3);
        prop_assert!(a.low_edge().as_hz() < a.high_edge().as_hz());
        prop_assert!(a.high_edge().as_hz() < b.low_edge().as_hz(), "occupied bands overlap");
        prop_assert_eq!(a.overlap_hz(b), 0.0);
        let guard = b.low_edge().as_hz() - a.high_edge().as_hz();
        prop_assert!((guard - 28e6).abs() < 1e-3, "guard {}", guard);
        prop_assert!((a.gap_hz(b) - guard).abs() < 1e-3);
    }

    /// `nearest` is total over the FCC 3.1–10.6 GHz allocation and
    /// idempotent: a channel's own center maps back to the same channel,
    /// and the chosen channel is never beaten by any other.
    #[test]
    fn bandplan_nearest_is_total_and_idempotent(f_hz in 3.1e9f64..10.6e9) {
        let freq = uwb_sim::time::Hertz::new(f_hz);
        let ch = Channel::nearest(freq);
        prop_assert!(ch.index() < CHANNEL_COUNT);
        // Idempotent under re-resolution through the channel's center.
        prop_assert_eq!(Channel::nearest(ch.center()), ch);
        // Optimal: no other channel is strictly closer.
        let d = (ch.center().as_hz() - f_hz).abs();
        for other in Channel::all() {
            prop_assert!((other.center().as_hz() - f_hz).abs() >= d - 1e-6);
        }
    }

    /// Spectral-overlap attenuation is symmetric, never positive, 0 dB on
    /// the diagonal, and −inf off it (the 528 MHz grid keeps occupied
    /// bands disjoint — finite adjacent-channel leakage is the front end's
    /// job, not the band plan's).
    #[test]
    fn bandplan_overlap_attenuation_symmetric_nonpositive(
        i in 0usize..CHANNEL_COUNT,
        j in 0usize..CHANNEL_COUNT,
    ) {
        let a = Channel::new(i).unwrap();
        let b = Channel::new(j).unwrap();
        let ab = a.overlap_attenuation_db(b);
        let ba = b.overlap_attenuation_db(a);
        prop_assert_eq!(ab.to_bits(), ba.to_bits(), "asymmetric: {} vs {}", ab, ba);
        prop_assert!(ab <= 0.0, "attenuation must be ≤ 0 dB: {}", ab);
        if i == j {
            prop_assert_eq!(ab, 0.0);
            prop_assert_eq!(a.gap_hz(b), 0.0);
        } else {
            prop_assert_eq!(ab, f64::NEG_INFINITY);
            prop_assert!(a.gap_hz(b) > 0.0);
        }
    }
}
