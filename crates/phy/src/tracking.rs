//! Fine timing and carrier tracking.
//!
//! After coarse acquisition aligns to the sample grid, the "Fine Tracking" /
//! "PLL/DLL" blocks of Figs. 1 and 3 close two loops:
//!
//! * a delay-locked loop (early–late correlator discriminator) that tracks
//!   sub-sample timing drift between the transmit and receive clocks, and
//! * a decision-directed phase-locked loop that tracks residual carrier
//!   phase/CFO after direct conversion.

use uwb_dsp::resample::fractional_delay;
use uwb_dsp::Complex;

/// Early–late delay-locked loop.
#[derive(Debug, Clone)]
pub struct Dll {
    /// Discriminator spacing in samples (early/late offset from prompt).
    spacing: f64,
    /// First-order loop gain.
    gain: f64,
    /// Accumulated timing correction in samples.
    timing: f64,
}

impl Dll {
    /// Creates a DLL with the given early–late spacing (samples) and loop
    /// gain.
    ///
    /// # Panics
    ///
    /// Panics if `spacing <= 0` or `gain` is outside `(0, 1]`.
    pub fn new(spacing: f64, gain: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0, 1]");
        Dll {
            spacing,
            gain,
            timing: 0.0,
        }
    }

    /// The current timing estimate in samples.
    pub fn timing(&self) -> f64 {
        self.timing
    }

    /// The early−late discriminator: correlates the template at
    /// `center ± spacing` and returns the normalized error (positive means
    /// the true peak is later than `center`).
    pub fn discriminant(
        &self,
        signal: &[Complex],
        template: &[Complex],
        center: f64,
    ) -> f64 {
        let early = correlate_at(signal, template, center - self.spacing + self.timing);
        let late = correlate_at(signal, template, center + self.spacing + self.timing);
        let (e, l) = (early.norm(), late.norm());
        if e + l > 0.0 {
            (l - e) / (e + l)
        } else {
            0.0
        }
    }

    /// Runs one loop update around `center`; returns the new timing
    /// estimate.
    pub fn update(&mut self, signal: &[Complex], template: &[Complex], center: f64) -> f64 {
        let err = self.discriminant(signal, template, center);
        self.timing += self.gain * err * self.spacing;
        self.timing
    }
}

/// Correlates `template` against `signal` starting at fractional offset
/// `start` (negative parts clipped), using sinc interpolation of the signal.
pub fn correlate_at(signal: &[Complex], template: &[Complex], start: f64) -> Complex {
    if signal.is_empty() || template.is_empty() {
        return Complex::ZERO;
    }
    let int_part = start.floor();
    let frac = start - int_part;
    // Shift the signal by -frac so integer indexing lands on `start`.
    let base = int_part as isize;
    if frac.abs() < 1e-12 {
        let mut acc = Complex::ZERO;
        for (j, &t) in template.iter().enumerate() {
            let idx = base + j as isize;
            if idx >= 0 && (idx as usize) < signal.len() {
                acc += signal[idx as usize] * t.conj();
            }
        }
        return acc;
    }
    // Window out the relevant region, fractionally delay, correlate.
    let lo = (base - 8).max(0) as usize;
    let hi = ((base + template.len() as isize + 8).max(0) as usize).min(signal.len());
    if lo >= hi {
        return Complex::ZERO;
    }
    let window = &signal[lo..hi];
    let shifted = fractional_delay(window, -frac, 6);
    let off = base - lo as isize;
    let mut acc = Complex::ZERO;
    for (j, &t) in template.iter().enumerate() {
        let idx = off + j as isize;
        if idx >= 0 && (idx as usize) < shifted.len() {
            acc += shifted[idx as usize] * t.conj();
        }
    }
    acc
}

/// First-order decision-directed PLL for residual carrier phase.
#[derive(Debug, Clone)]
pub struct Pll {
    gain: f64,
    phase: f64,
    freq: f64,
    freq_gain: f64,
}

impl Pll {
    /// Creates a second-order PLL (phase gain `gain`, frequency gain
    /// `gain²/4` — critically damped-ish).
    ///
    /// # Panics
    ///
    /// Panics if `gain` is outside `(0, 1]`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0, 1]");
        Pll {
            gain,
            phase: 0.0,
            freq: 0.0,
            freq_gain: gain * gain / 4.0,
        }
    }

    /// Current phase estimate (radians).
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Current frequency estimate (radians/update).
    pub fn frequency(&self) -> f64 {
        self.freq
    }

    /// De-rotates a symbol by the current estimate, then updates the loop
    /// from the decision error (BPSK decision-directed: error = angle from
    /// the nearer of 0/π).
    pub fn track(&mut self, symbol: Complex) -> Complex {
        let corrected = symbol * Complex::cis(-self.phase);
        // BPSK decision: fold to the right half-plane.
        let folded = if corrected.re >= 0.0 {
            corrected
        } else {
            -corrected
        };
        let err = folded.arg();
        self.freq += self.freq_gain * err;
        self.phase += self.gain * err + self.freq;
        corrected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::PulseShape;
    use uwb_sim::time::SampleRate;

    fn pulse_template() -> Vec<Complex> {
        PulseShape::gen2_default().generate_complex(SampleRate::from_gsps(1.0))
    }

    fn delayed_signal(template: &[Complex], delay: f64) -> Vec<Complex> {
        let mut sig = vec![Complex::ZERO; 40];
        sig.extend_from_slice(template);
        sig.extend(vec![Complex::ZERO; 40]);
        fractional_delay(&sig, delay, 8)
    }

    #[test]
    fn correlate_at_integer_matches_direct() {
        let tpl = pulse_template();
        let sig = delayed_signal(&tpl, 0.0);
        let z = correlate_at(&sig, &tpl, 40.0);
        // Unit-energy template aligned: correlation = 1.
        assert!((z.norm() - 1.0).abs() < 0.01, "{}", z.norm());
    }

    #[test]
    fn discriminator_sign_tracks_offset() {
        let tpl = pulse_template();
        let dll = Dll::new(1.0, 0.5);
        // Signal delayed by +0.3 samples: true peak later than center 40.
        let sig = delayed_signal(&tpl, 0.3);
        let d_pos = dll.discriminant(&sig, &tpl, 40.0);
        assert!(d_pos > 0.01, "{d_pos}");
        let sig2 = delayed_signal(&tpl, -0.3);
        let d_neg = dll.discriminant(&sig2, &tpl, 40.0);
        assert!(d_neg < -0.01, "{d_neg}");
    }

    #[test]
    fn dll_converges_to_true_offset() {
        let tpl = pulse_template();
        let true_delay = 0.4;
        let sig = delayed_signal(&tpl, true_delay);
        let mut dll = Dll::new(1.0, 0.4);
        for _ in 0..30 {
            dll.update(&sig, &tpl, 40.0);
        }
        assert!(
            (dll.timing() - true_delay).abs() < 0.1,
            "converged to {} (true {true_delay})",
            dll.timing()
        );
    }

    #[test]
    fn dll_zero_error_at_alignment() {
        let tpl = pulse_template();
        let sig = delayed_signal(&tpl, 0.0);
        let dll = Dll::new(1.0, 0.5);
        let d = dll.discriminant(&sig, &tpl, 40.0);
        assert!(d.abs() < 0.02, "{d}");
    }

    #[test]
    fn pll_tracks_static_phase() {
        let mut pll = Pll::new(0.3);
        let offset = 0.6;
        let mut last = Complex::ZERO;
        for _ in 0..100 {
            last = pll.track(Complex::cis(offset));
        }
        // Corrected symbol converges to the real axis.
        assert!(last.arg().abs() < 0.05, "residual {}", last.arg());
        assert!((pll.phase() - offset).abs() < 0.05);
    }

    #[test]
    fn pll_tracks_frequency_ramp() {
        let mut pll = Pll::new(0.3);
        let dphi = 0.02; // rad per symbol
        let mut residuals = Vec::new();
        for k in 0..400 {
            let sym = Complex::cis(dphi * k as f64);
            let c = pll.track(sym);
            residuals.push(c.arg().abs());
        }
        let tail: f64 = residuals[300..].iter().sum::<f64>() / 100.0;
        assert!(tail < 0.05, "tail residual {tail}");
        assert!((pll.frequency() - dphi).abs() < 0.005);
    }

    #[test]
    fn pll_handles_bpsk_flips() {
        // Alternating ±1 symbols with a phase offset: decision-directed loop
        // must ignore the data flips.
        let mut pll = Pll::new(0.2);
        let offset = -0.4;
        let mut last = Complex::ZERO;
        for k in 0..200 {
            let data = if k % 2 == 0 { 1.0 } else { -1.0 };
            last = pll.track(Complex::cis(offset) * data);
        }
        let folded = if last.re >= 0.0 { last } else { -last };
        assert!(folded.arg().abs() < 0.05, "{}", folded.arg());
    }

    #[test]
    fn empty_inputs_give_zero() {
        assert_eq!(correlate_at(&[], &[Complex::ONE], 0.0), Complex::ZERO);
        assert_eq!(correlate_at(&[Complex::ONE], &[], 0.0), Complex::ZERO);
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn bad_gain_panics() {
        Pll::new(0.0);
    }
}
