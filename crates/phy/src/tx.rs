//! The gen2 transmitter: frame slots → pulse waveform.
//!
//! Per paper Fig. 3, the transmitter takes "Pulses per bit" symbols, shapes
//! 500 MHz pulses, and hands them to the frequency synthesizer/upconverter.
//! Here the baseband waveform synthesis is exact; upconversion to the
//! channel carrier is delegated to [`uwb_rf::TxChain`] when a passband view
//! is needed (FCC mask, Fig. 4).

use crate::config::Gen2Config;
use crate::error::PhyError;
use crate::packet::{build_frame_into, FrameScratch, FrameSlots};
use crate::pulse::PulseShape;
use uwb_dsp::Complex;
use uwb_sim::time::SampleRate;

/// A transmitted burst: complex baseband samples plus frame geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Burst {
    /// Complex baseband samples at [`Burst::sample_rate`].
    pub samples: Vec<Complex>,
    /// The sample rate of `samples`.
    pub sample_rate: SampleRate,
    /// Sample index of the *center* of slot 0's pulse.
    pub slot0_center: usize,
    /// Samples per slot.
    pub samples_per_slot: usize,
    /// The frame's slot-amplitude breakdown.
    pub slots: FrameSlots,
}

impl Burst {
    /// Sample index of the center of slot `k`.
    pub fn slot_center(&self, k: usize) -> usize {
        self.slot0_center + k * self.samples_per_slot
    }

    /// Total number of slots in the frame.
    pub fn slot_count(&self) -> usize {
        self.slots.concat().len()
    }

    /// Duration of the burst in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate.as_hz() * 1e6
    }
}

/// The second-generation pulsed-UWB transmitter.
#[derive(Debug, Clone)]
pub struct Gen2Transmitter {
    config: Gen2Config,
    pulse: Vec<f64>,
}

impl Gen2Transmitter {
    /// Creates a transmitter, generating the 500 MHz pulse template for the
    /// configured sample rate.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: Gen2Config) -> Result<Self, PhyError> {
        config.validate()?;
        let pulse = PulseShape::gen2_default().generate(config.sample_rate);
        Ok(Gen2Transmitter { config, pulse })
    }

    /// The configuration in use.
    pub fn config(&self) -> &Gen2Config {
        &self.config
    }

    /// The unit-energy pulse template.
    pub fn pulse(&self) -> &[f64] {
        &self.pulse
    }

    /// Synthesizes the baseband waveform for a payload.
    ///
    /// # Errors
    ///
    /// Propagates framing errors from [`build_frame`].
    pub fn transmit_packet(&self, payload: &[u8]) -> Result<Burst, PhyError> {
        let mut burst = Burst {
            samples: Vec::new(),
            sample_rate: self.config.sample_rate,
            slot0_center: 0,
            samples_per_slot: 0,
            slots: FrameSlots::default(),
        };
        let mut scratch = FrameScratch::new();
        self.transmit_packet_into(payload, &mut burst, &mut scratch)?;
        Ok(burst)
    }

    /// [`Gen2Transmitter::transmit_packet`] into a caller-owned [`Burst`],
    /// drawing framing work buffers from `scratch` — identical output, zero
    /// steady-state heap allocation once the buffers reach their high-water
    /// marks (the per-trial form used by the Monte-Carlo engine).
    ///
    /// # Errors
    ///
    /// Propagates framing errors from [`crate::packet::build_frame_into`].
    pub fn transmit_packet_into(
        &self,
        payload: &[u8],
        burst: &mut Burst,
        scratch: &mut FrameScratch,
    ) -> Result<(), PhyError> {
        build_frame_into(payload, &self.config, &mut burst.slots, scratch)?;
        self.synthesize_in_place(burst);
        Ok(())
    }

    /// Synthesizes a waveform from explicit frame slots (used by the
    /// platform crate for arbitrary-waveform experiments).
    pub fn synthesize(&self, slots: FrameSlots) -> Burst {
        let mut burst = Burst {
            samples: Vec::new(),
            sample_rate: self.config.sample_rate,
            slot0_center: 0,
            samples_per_slot: 0,
            slots,
        };
        self.synthesize_in_place(&mut burst);
        burst
    }

    /// Re-synthesizes `burst.samples` (and geometry fields) from
    /// `burst.slots`, reusing the sample buffer — identical output to
    /// [`Gen2Transmitter::synthesize`], allocation-free once the capacity
    /// suffices. The four slot segments are walked in transmission order
    /// without concatenating them first.
    pub fn synthesize_in_place(&self, burst: &mut Burst) {
        let sps = self.config.samples_per_slot();
        let half_pulse = self.pulse.len() / 2;
        // Guard so the first/last pulse fit entirely.
        let guard = half_pulse + sps;
        let slot_count = burst.slots.preamble.len()
            + burst.slots.sfd.len()
            + burst.slots.header.len()
            + burst.slots.payload.len();
        let n = slot_count * sps + 2 * guard;
        burst.samples.clear();
        burst.samples.resize(n, Complex::ZERO);
        let segments = [
            &burst.slots.preamble,
            &burst.slots.sfd,
            &burst.slots.header,
            &burst.slots.payload,
        ];
        let mut k = 0usize;
        for seg in segments {
            for &a in seg.iter() {
                if a != 0.0 {
                    let center = guard + k * sps;
                    for (j, &p) in self.pulse.iter().enumerate() {
                        let idx = center + j - half_pulse;
                        burst.samples[idx].re += a * p;
                    }
                }
                k += 1;
            }
        }
        burst.sample_rate = self.config.sample_rate;
        burst.slot0_center = guard;
        burst.samples_per_slot = sps;
    }

    /// The preamble template waveform (one m-sequence period as pulses),
    /// used by the receiver's correlators.
    pub fn preamble_template(&self) -> Vec<Complex> {
        let chips = crate::pn::msequence_chips(self.config.preamble_degree);
        let sps = self.config.samples_per_slot();
        // Chip k's pulse occupies [k*sps, k*sps + pulse.len()); sample 0 of
        // the template aligns with (chip-0 center − pulse.len()/2) in a
        // transmitted burst.
        let n = (chips.len() - 1) * sps + self.pulse.len();
        let mut out = vec![Complex::ZERO; n];
        for (k, &c) in chips.iter().enumerate() {
            let start = k * sps;
            for (j, &p) in self.pulse.iter().enumerate() {
                out[start + j].re += c * p;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::complex::mean_power;

    fn tx() -> Gen2Transmitter {
        Gen2Transmitter::new(Gen2Config::nominal_100mbps()).unwrap()
    }

    #[test]
    fn burst_geometry() {
        let t = tx();
        let burst = t.transmit_packet(&[0xAB; 16]).unwrap();
        assert_eq!(burst.samples_per_slot, 10);
        let expected_slots = burst.slots.concat().len();
        assert_eq!(burst.slot_count(), expected_slots);
        // Pulse energy appears at slot centers.
        assert!(burst.samples.len() > expected_slots * 10);
        assert_eq!(burst.slot_center(5) - burst.slot_center(0), 50);
    }

    #[test]
    fn pulse_at_slot_center_has_expected_amplitude() {
        let t = tx();
        // A single +1 preamble chip puts a pulse peak at the slot center.
        let burst = t.transmit_packet(&[]).unwrap();
        let c0 = burst.slot_center(0);
        let first_chip = burst.slots.preamble[0];
        let peak = t.pulse()[t.pulse().len() / 2];
        assert!(
            (burst.samples[c0].re - first_chip * peak).abs() < 0.05,
            "{} vs {}",
            burst.samples[c0].re,
            first_chip * peak
        );
    }

    #[test]
    fn waveform_power_scales_with_activity() {
        let t = tx();
        let burst = t.transmit_packet(&[0xFF; 64]).unwrap();
        let p = mean_power(&burst.samples);
        assert!(p > 0.0);
        // Each slot carries a unit-energy pulse (BPSK): average power ~
        // pulse_energy / samples_per_slot = 1/10 (preamble/payload active).
        assert!((p - 0.1).abs() < 0.04, "mean power {p}");
    }

    #[test]
    fn duration_matches_rates() {
        let t = tx();
        let payload = vec![0u8; 125]; // ~1000 bits + framing
        let burst = t.transmit_packet(&payload).unwrap();
        // 1000 payload bits + 32 crc bits at 100 Mbps = 10.3 us, plus 5.2 us
        // preamble and header.
        let d = burst.duration_us();
        assert!(d > 15.0 && d < 18.5, "duration {d} µs");
    }

    #[test]
    fn preamble_template_correlates_with_burst() {
        let t = tx();
        let burst = t.transmit_packet(&[1, 2, 3]).unwrap();
        let template = t.preamble_template();
        let corr = uwb_dsp::correlation::cross_correlate(&burst.samples, &template);
        let (peak_idx, _) = uwb_dsp::correlation::peak(&corr).unwrap();
        // Peak at the start of one of the preamble periods: template sample 0
        // aligns with chip-0 center minus half the pulse length.
        let sps = burst.samples_per_slot;
        let period = 127 * sps;
        let start0 = burst.slot0_center as isize - (t.pulse().len() / 2) as isize;
        let rel = (peak_idx as isize - start0).rem_euclid(period as isize);
        assert!(
            rel.min(period as isize - rel) <= 1,
            "peak at {peak_idx}, rel {rel}"
        );
    }

    #[test]
    fn empty_payload_still_frames() {
        let t = tx();
        let burst = t.transmit_packet(&[]).unwrap();
        // CRC-32 alone: 32 payload bits.
        assert_eq!(burst.slots.payload.len(), 32);
        assert!(burst.duration_us() > 5.0);
    }

    #[test]
    fn transmit_into_matches_and_reuses_storage() {
        let t = tx();
        let want = t.transmit_packet(&[0x5A; 32]).unwrap();
        // Pre-sized from a different payload: the into-form must fully
        // overwrite it and reuse the sample allocation.
        let mut burst = t.transmit_packet(&[0x11; 32]).unwrap();
        let ptr = burst.samples.as_ptr();
        let mut scratch = FrameScratch::new();
        t.transmit_packet_into(&[0x5A; 32], &mut burst, &mut scratch)
            .unwrap();
        assert_eq!(burst, want);
        assert_eq!(burst.samples.as_ptr(), ptr, "sample buffer reallocated");
        // Second call with the warm scratch is still bit-identical.
        t.transmit_packet_into(&[0x5A; 32], &mut burst, &mut scratch)
            .unwrap();
        assert_eq!(burst, want);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.pulses_per_bit = 0;
        assert!(Gen2Transmitter::new(cfg).is_err());
    }
}
