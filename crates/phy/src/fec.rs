//! Convolutional coding and Viterbi decoding.
//!
//! The paper's back end uses a "Viterbi demodulator" both for channel-coding
//! gain and ISI equalization. This module provides the channel-coding half:
//! a rate-1/2 convolutional encoder (any constraint length up to 9) and a
//! terminated Viterbi decoder with hard or soft decisions. The ISI equalizer
//! (MLSE) lives in [`crate::mlse`] and shares the same algorithmic core.

/// A rate-1/2 convolutional code defined by two generator polynomials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvCode {
    /// Constraint length K (memory = K − 1).
    pub constraint_length: u32,
    /// First generator polynomial (binary, LSB = current input).
    pub g0: u32,
    /// Second generator polynomial.
    pub g1: u32,
}

impl ConvCode {
    /// The industry-standard K=7 code (171, 133 octal) — strongest option.
    pub fn k7() -> Self {
        ConvCode {
            constraint_length: 7,
            g0: 0o171,
            g1: 0o133,
        }
    }

    /// The compact K=3 code (7, 5 octal) — what a 0.18 µm low-power back end
    /// would realistically afford at 100 Mbps.
    pub fn k3() -> Self {
        ConvCode {
            constraint_length: 3,
            g0: 0o7,
            g1: 0o5,
        }
    }

    /// Number of trellis states, `2^(K−1)`.
    pub fn states(&self) -> usize {
        1usize << (self.constraint_length - 1)
    }

    /// Encodes `bits`, appending `K − 1` zero tail bits to terminate the
    /// trellis. Output has `2 * (bits.len() + K − 1)` coded bits.
    pub fn encode(&self, bits: &[bool]) -> Vec<bool> {
        let k = self.constraint_length;
        let mut state = 0u32; // shift register of the last K-1 inputs
        let mut out = Vec::with_capacity(2 * (bits.len() + k as usize - 1));
        let tail = vec![false; k as usize - 1];
        for &b in bits.iter().chain(tail.iter()) {
            let reg = ((b as u32) << (k - 1)) | state;
            out.push(parity(reg & self.g0));
            out.push(parity(reg & self.g1));
            state = reg >> 1;
        }
        out
    }

    /// Decodes hard-decision coded bits (as produced by [`encode`], including
    /// the tail). Returns the information bits.
    ///
    /// [`encode`]: ConvCode::encode
    ///
    /// # Panics
    ///
    /// Panics if the input length is odd or shorter than the tail.
    pub fn decode_hard(&self, coded: &[bool]) -> Vec<bool> {
        let llrs: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        self.decode_soft(&llrs)
    }

    /// Decodes soft inputs: one value per coded bit, positive meaning "bit
    /// is 1", magnitude meaning confidence. Returns the information bits
    /// (tail removed).
    ///
    /// # Panics
    ///
    /// Panics if the input length is odd or shorter than the tail.
    pub fn decode_soft(&self, soft: &[f64]) -> Vec<bool> {
        assert!(soft.len().is_multiple_of(2), "rate-1/2 input must have even length");
        let n_steps = soft.len() / 2;
        let k = self.constraint_length as usize;
        assert!(n_steps >= k - 1, "input shorter than the code tail");
        let n_states = self.states();

        // Precompute per-(state, input) outputs.
        let mut out0 = vec![(false, false); n_states * 2];
        for s in 0..n_states {
            for inp in 0..2usize {
                let reg = ((inp as u32) << (self.constraint_length - 1)) | s as u32;
                out0[s * 2 + inp] = (parity(reg & self.g0), parity(reg & self.g1));
            }
        }

        const NEG_INF: f64 = f64::NEG_INFINITY;
        let mut metric = vec![NEG_INF; n_states];
        metric[0] = 0.0; // encoder starts in the zero state
        let mut decisions: Vec<Vec<u16>> = Vec::with_capacity(n_steps);

        for step in 0..n_steps {
            let l0 = soft[2 * step];
            let l1 = soft[2 * step + 1];
            let mut next = vec![NEG_INF; n_states];
            let mut dec = vec![0u16; n_states];
            for s in 0..n_states {
                if metric[s] == NEG_INF {
                    continue;
                }
                for inp in 0..2usize {
                    let (o0, o1) = out0[s * 2 + inp];
                    // Correlation metric: +llr if output bit is 1, -llr if 0.
                    let gain = if o0 { l0 } else { -l0 } + if o1 { l1 } else { -l1 };
                    let reg = ((inp as u32) << (self.constraint_length - 1)) | s as u32;
                    let ns = (reg >> 1) as usize;
                    let cand = metric[s] + gain;
                    if cand > next[ns] {
                        next[ns] = cand;
                        // Record the predecessor state's low bit decision:
                        // the bit shifted out of `reg` IS s's LSB; we store
                        // the input and predecessor for traceback.
                        dec[ns] = (s as u16) << 1 | inp as u16;
                    }
                }
            }
            metric = next;
            decisions.push(dec);
        }

        // Terminated trellis: traceback from state 0.
        let mut state = 0usize;
        let mut bits_rev = Vec::with_capacity(n_steps);
        for step in (0..n_steps).rev() {
            let d = decisions[step][state];
            let inp = (d & 1) != 0;
            let pred = (d >> 1) as usize;
            bits_rev.push(inp);
            state = pred;
        }
        bits_rev.reverse();
        bits_rev.truncate(n_steps - (k - 1)); // strip tail
        bits_rev
    }

    /// Free distance of the code (tabulated for the built-in codes, else a
    /// conservative lower bound of `K`).
    pub fn free_distance(&self) -> u32 {
        match (self.constraint_length, self.g0, self.g1) {
            (3, 0o7, 0o5) => 5,
            (7, 0o171, 0o133) => 10,
            (k, _, _) => k,
        }
    }
}

#[inline]
fn parity(x: u32) -> bool {
    x.count_ones() % 2 == 1
}

/// Packs bits (MSB-first) into bytes, zero-padding the final byte.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = Vec::new();
    bits_to_bytes_into(bits, &mut out);
    out
}

/// [`bits_to_bytes`] into a caller-owned buffer (allocation-free once the
/// capacity suffices).
pub fn bits_to_bytes_into(bits: &[bool], out: &mut Vec<u8>) {
    out.clear();
    out.extend(bits.chunks(8).map(|chunk| {
        chunk
            .iter()
            .enumerate()
            .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << (7 - i)))
    }));
}

/// Unpacks bytes into bits, MSB-first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut out = Vec::new();
    bytes_to_bits_into(bytes, &mut out);
    out
}

/// [`bytes_to_bits`] into a caller-owned buffer (allocation-free once the
/// capacity suffices).
pub fn bytes_to_bits_into(bytes: &[u8], out: &mut Vec<bool>) {
    out.clear();
    out.extend(
        bytes
            .iter()
            .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 != 0)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::Rand;

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Rand::new(seed);
        (0..n).map(|_| rng.bit()).collect()
    }

    #[test]
    fn encode_rate_and_tail() {
        let code = ConvCode::k3();
        let bits = random_bits(100, 1);
        let coded = code.encode(&bits);
        assert_eq!(coded.len(), 2 * (100 + 2));
    }

    #[test]
    fn clean_round_trip_k3_and_k7() {
        for code in [ConvCode::k3(), ConvCode::k7()] {
            let bits = random_bits(200, 2);
            let coded = code.encode(&bits);
            let decoded = code.decode_hard(&coded);
            assert_eq!(decoded, bits, "K={}", code.constraint_length);
        }
    }

    #[test]
    fn corrects_scattered_errors() {
        let code = ConvCode::k7();
        let bits = random_bits(300, 3);
        let mut coded = code.encode(&bits);
        // Flip well-separated bits (within correction capability).
        for idx in [10, 100, 200, 350, 500] {
            coded[idx] = !coded[idx];
        }
        let decoded = code.decode_hard(&coded);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn k3_corrects_two_spread_errors() {
        let code = ConvCode::k3();
        let bits = random_bits(100, 4);
        let mut coded = code.encode(&bits);
        coded[20] = !coded[20];
        coded[120] = !coded[120];
        assert_eq!(code.decode_hard(&coded), bits);
    }

    #[test]
    fn soft_beats_hard_at_moderate_noise() {
        // Monte-Carlo: soft-decision decoding should produce fewer bit errors
        // than hard-decision at the same Eb/N0.
        let code = ConvCode::k3();
        let mut rng = Rand::new(5);
        let n_bits = 400;
        let sigma = 0.9; // heavy noise on unit-amplitude symbols
        let mut hard_errs = 0usize;
        let mut soft_errs = 0usize;
        for trial in 0..20 {
            let bits = random_bits(n_bits, 100 + trial);
            let coded = code.encode(&bits);
            let rx: Vec<f64> = coded
                .iter()
                .map(|&b| (if b { 1.0 } else { -1.0 }) + sigma * rng.gaussian())
                .collect();
            let hard: Vec<bool> = rx.iter().map(|&x| x > 0.0).collect();
            let dh = code.decode_hard(&hard);
            let ds = code.decode_soft(&rx);
            hard_errs += dh.iter().zip(&bits).filter(|(a, b)| a != b).count();
            soft_errs += ds.iter().zip(&bits).filter(|(a, b)| a != b).count();
        }
        assert!(
            soft_errs < hard_errs,
            "soft {soft_errs} should beat hard {hard_errs}"
        );
        assert!(hard_errs > 0, "test too easy to be meaningful");
    }

    #[test]
    fn known_k3_encoding() {
        // K=3 (7,5): input 1 from state 00 -> outputs (1,1).
        let code = ConvCode::k3();
        let coded = code.encode(&[true]);
        // First two coded bits for input 1, state 0: g0=111 &100 -> 1; g1=101&100 -> 1.
        assert_eq!(&coded[..2], &[true, true]);
    }

    #[test]
    fn free_distances() {
        assert_eq!(ConvCode::k3().free_distance(), 5);
        assert_eq!(ConvCode::k7().free_distance(), 10);
        assert_eq!(ConvCode::k3().states(), 4);
        assert_eq!(ConvCode::k7().states(), 64);
    }

    #[test]
    fn bit_byte_round_trip() {
        let bytes = vec![0xDE, 0xAD, 0xBE, 0xEF];
        let bits = bytes_to_bits(&bytes);
        assert_eq!(bits.len(), 32);
        assert_eq!(bits_to_bytes(&bits), bytes);
        // MSB-first check.
        assert!(bytes_to_bits(&[0x80])[0]);
        assert!(bytes_to_bits(&[0x01])[7]);
    }

    #[test]
    fn empty_message() {
        let code = ConvCode::k3();
        let coded = code.encode(&[]);
        assert_eq!(coded.len(), 4); // tail only
        assert!(code.decode_hard(&coded).is_empty());
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_input_panics() {
        ConvCode::k3().decode_hard(&[true; 7]);
    }
}
