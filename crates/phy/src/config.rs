//! Configuration of the second-generation transceiver.
//!
//! Paper §3: "This receiver allows us to trade off power dissipation with
//! signal processing complexity, quality of service and data rate" — the
//! knobs of that trade (modulation, spreading, FEC, RAKE fingers, channel-
//! estimate precision, ADC bits) are all here.

use crate::bandplan::Channel;
use crate::error::PhyError;
use crate::fec::ConvCode;
use crate::modulation::Modulation;
use uwb_sim::time::{Hertz, SampleRate};

/// Full configuration of a gen2 link.
#[derive(Debug, Clone, PartialEq)]
pub struct Gen2Config {
    /// The occupied sub-band.
    pub channel: Channel,
    /// Complex-baseband simulation sample rate.
    pub sample_rate: SampleRate,
    /// Pulse repetition frequency: one pulse *slot* per period.
    pub prf: Hertz,
    /// Pulses (slots) transmitted per modulated bit — the "Pulses per bit"
    /// spreading knob of paper Fig. 3. Higher values trade rate for Eb.
    pub pulses_per_bit: usize,
    /// Payload modulation.
    pub modulation: Modulation,
    /// Optional convolutional code on the payload.
    pub fec: Option<ConvCode>,
    /// Channel-estimate quantization in bits (`None` = unquantized floats).
    /// Paper: "estimated with a precision of up to four bits".
    pub chanest_bits: Option<u32>,
    /// RAKE fingers the receiver combines.
    pub rake_fingers: usize,
    /// Resolution of the I/Q ADCs (paper: 5-bit SAR).
    pub adc_bits: u32,
    /// m-sequence degree of the acquisition preamble (127 chips at 7).
    pub preamble_degree: u32,
    /// Number of preamble periods transmitted.
    pub preamble_repeats: usize,
    /// Enable the symbol-spaced MLSE (Viterbi) equalizer after the RAKE.
    pub mlse_taps: usize,
    /// Enable the decision-directed carrier-phase PLL on the demodulated
    /// slot statistics (the "PLL" of paper Fig. 3) — needed when the LO has
    /// residual CFO/phase noise. BPSK payloads only.
    pub carrier_tracking: bool,
}

impl Gen2Config {
    /// The paper's nominal operating point: channel 3 (≈5 GHz, the Fig. 4
    /// carrier), 1 GS/s baseband simulation, 100 MHz PRF, BPSK at 1
    /// pulse/bit ⇒ 100 Mbps uncoded, 4-bit channel estimate, 8 RAKE
    /// fingers, 5-bit ADC, 127-chip preamble × 4.
    pub fn nominal_100mbps() -> Self {
        Gen2Config {
            channel: Channel::near_5ghz(),
            sample_rate: SampleRate::from_gsps(1.0),
            prf: Hertz::from_mhz(100.0),
            pulses_per_bit: 1,
            modulation: Modulation::Bpsk,
            fec: None,
            chanest_bits: Some(4),
            rake_fingers: 8,
            adc_bits: 5,
            preamble_degree: 7,
            preamble_repeats: 4,
            mlse_taps: 0,
            carrier_tracking: false,
        }
    }

    /// Validates parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] when a parameter is out of range
    /// or the PRF does not divide the sample rate.
    pub fn validate(&self) -> Result<(), PhyError> {
        let sps = self.sample_rate.as_hz() / self.prf.as_hz();
        if sps < 2.0 || (sps - sps.round()).abs() > 1e-6 {
            return Err(PhyError::InvalidConfig(format!(
                "PRF must divide the sample rate into >= 2 samples per slot (got {sps})"
            )));
        }
        if self.pulses_per_bit == 0 {
            return Err(PhyError::InvalidConfig(
                "pulses_per_bit must be at least 1".into(),
            ));
        }
        if self.rake_fingers == 0 {
            return Err(PhyError::InvalidConfig(
                "rake_fingers must be at least 1".into(),
            ));
        }
        if !(1..=24).contains(&self.adc_bits) {
            return Err(PhyError::InvalidConfig("adc_bits must be 1..=24".into()));
        }
        if let Some(bits) = self.chanest_bits {
            if !(1..=16).contains(&bits) {
                return Err(PhyError::InvalidConfig(
                    "chanest_bits must be 1..=16".into(),
                ));
            }
        }
        if !(3..=12).contains(&self.preamble_degree) {
            return Err(PhyError::InvalidConfig(
                "preamble_degree must be 3..=12".into(),
            ));
        }
        if self.preamble_repeats == 0 {
            return Err(PhyError::InvalidConfig(
                "preamble_repeats must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// Samples per pulse slot.
    pub fn samples_per_slot(&self) -> usize {
        (self.sample_rate.as_hz() / self.prf.as_hz()).round() as usize
    }

    /// Chips in one preamble period.
    pub fn preamble_length(&self) -> usize {
        (1usize << self.preamble_degree) - 1
    }

    /// Information bit rate in bits/s, accounting for modulation, spreading
    /// and FEC rate.
    pub fn bit_rate(&self) -> f64 {
        let symbol_rate =
            self.prf.as_hz() / (self.pulses_per_bit * self.modulation.slots_per_symbol()) as f64;
        let raw = symbol_rate * self.modulation.bits_per_symbol() as f64;
        if self.fec.is_some() {
            raw / 2.0
        } else {
            raw
        }
    }

    /// Duration of the preamble + SFD in microseconds — the acquisition
    /// overhead the paper wants near 20 µs.
    pub fn preamble_duration_us(&self) -> f64 {
        let chips = self.preamble_length() * self.preamble_repeats + 13; // + SFD
        chips as f64 / self.prf.as_hz() * 1e6
    }
}

impl Default for Gen2Config {
    fn default() -> Self {
        Gen2Config::nominal_100mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_valid_and_100mbps() {
        let cfg = Gen2Config::nominal_100mbps();
        cfg.validate().unwrap();
        assert_eq!(cfg.bit_rate(), 100e6);
        assert_eq!(cfg.samples_per_slot(), 10);
        assert_eq!(cfg.preamble_length(), 127);
    }

    #[test]
    fn bit_rate_accounts_for_knobs() {
        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.pulses_per_bit = 4;
        assert_eq!(cfg.bit_rate(), 25e6);
        cfg.fec = Some(ConvCode::k3());
        assert_eq!(cfg.bit_rate(), 12.5e6);
        cfg.modulation = Modulation::Pam4;
        assert_eq!(cfg.bit_rate(), 25e6);
        cfg.modulation = Modulation::Ppm2;
        // 2 slots per symbol halves the symbol rate.
        assert_eq!(cfg.bit_rate(), 6.25e6);
    }

    #[test]
    fn preamble_duration_in_tens_of_us_range() {
        let cfg = Gen2Config::nominal_100mbps();
        let d = cfg.preamble_duration_us();
        // 4 x 127 chips + 13 at 100 MHz = 5.21 us.
        assert!((d - 5.21).abs() < 0.01, "{d}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.prf = Hertz::from_mhz(333.0); // does not divide 1 GS/s
        assert!(matches!(cfg.validate(), Err(PhyError::InvalidConfig(_))));

        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.pulses_per_bit = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.adc_bits = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.chanest_bits = Some(99);
        assert!(cfg.validate().is_err());

        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.preamble_repeats = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.rake_fingers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_nominal() {
        assert_eq!(Gen2Config::default(), Gen2Config::nominal_100mbps());
    }
}
