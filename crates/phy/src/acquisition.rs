//! Coarse packet acquisition.
//!
//! The receiver must find the preamble's code phase before anything else can
//! run. A serial search correlates one preamble period against the incoming
//! samples at every candidate phase; hardware parallelization (paper §1/§2)
//! divides the search time by the number of correlators. The gen1 chip
//! achieved "packet synchronization in less than 70 µs" this way; the gen2
//! system targets a ~20 µs preamble.

use crate::correlator::{CorrelatorBank, CorrelatorStats};
use uwb_dsp::{Complex, DspScratch};

/// Acquisition tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquisitionConfig {
    /// Normalized-correlation detection threshold in `(0, 1)`.
    pub threshold: f64,
    /// Number of parallel correlators in the search engine.
    pub parallelism: usize,
    /// Back-end clock frequency in hertz (one new sample per clock).
    pub clock_hz: f64,
}

impl AcquisitionConfig {
    /// A sensible default: threshold 0.28 (well above the ≈`1/√127` noise
    /// floor of a 127-chip window but low enough for 1-bit quantization and
    /// deep multipath), 32-way parallel search, clock at the given sample
    /// rate.
    pub fn with_clock(clock_hz: f64) -> Self {
        AcquisitionConfig {
            threshold: 0.28,
            parallelism: 32,
            clock_hz,
        }
    }
}

/// Outcome of a coarse acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquisitionResult {
    /// `true` if the peak metric cleared the threshold.
    pub detected: bool,
    /// Sample offset (within the searched window) where the template aligns.
    pub offset: usize,
    /// The normalized correlation value at the peak, in `[0, 1]`.
    pub metric: f64,
    /// Hardware cost of the search.
    pub stats: CorrelatorStats,
    /// Serial-search time on the modeled hardware, in microseconds.
    pub search_time_us: f64,
}

/// Coarse acquisition engine: searches one preamble period of code phases.
#[derive(Debug, Clone)]
pub struct CoarseAcquisition {
    bank: CorrelatorBank,
    config: AcquisitionConfig,
}

impl CoarseAcquisition {
    /// Creates an engine for the given preamble-period template.
    ///
    /// # Panics
    ///
    /// Panics if the template is empty, `parallelism == 0`, or the threshold
    /// is outside `(0, 1)`.
    pub fn new(template: Vec<Complex>, config: AcquisitionConfig) -> Self {
        assert!(
            config.threshold > 0.0 && config.threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        CoarseAcquisition {
            bank: CorrelatorBank::new(template, config.parallelism),
            config,
        }
    }

    /// The acquisition configuration.
    pub fn config(&self) -> &AcquisitionConfig {
        &self.config
    }

    /// Searches `signal` for the preamble over `search_len` candidate phases
    /// (typically one preamble period, since the preamble repeats).
    ///
    /// Uses the energy-normalized correlation metric so the threshold is
    /// SNR-invariant.
    pub fn acquire(&self, signal: &[Complex], search_len: usize) -> AcquisitionResult {
        let mut scratch = DspScratch::new();
        self.acquire_with(signal, search_len, &mut scratch)
    }

    /// Pre-builds the correlator bank's memoized template spectrum for a
    /// search over `signal_len` samples and `search_len` candidate phases —
    /// the lookup [`CoarseAcquisition::acquire_with`] would otherwise
    /// perform lazily. Called once per batch by the batched stage-sweep
    /// runtime; identical results either way.
    pub fn warm(&self, signal_len: usize, search_len: usize) {
        let m = self.bank.template_len();
        let max_phase = signal_len.saturating_sub(m);
        let n_phases = search_len.min(max_phase + 1);
        self.bank.warm_prefix(signal_len, n_phases);
    }

    /// [`CoarseAcquisition::acquire`] drawing all work buffers from the
    /// caller's scratch arena — identical results, zero steady-state heap
    /// allocation (the per-trial form used by the Gen2 receiver).
    pub fn acquire_with(
        &self,
        signal: &[Complex],
        search_len: usize,
        scratch: &mut DspScratch,
    ) -> AcquisitionResult {
        let m = self.bank.template_len();
        let max_phase = signal.len().saturating_sub(m);
        let n_phases = search_len.min(max_phase + 1);
        let mut outputs = scratch.take_complex(0);
        let stats = self
            .bank
            .run_prefix_into(signal, n_phases, scratch, &mut outputs);

        // Normalize each output by window and template energy.
        let tpl_energy: f64 = self
            .bank
            .template()
            .iter()
            .map(|z| z.norm_sqr())
            .sum();
        // Scan in squared-metric space: one divide per phase and no sqrt
        // (squaring is monotone on nonnegative reals, so the argmax is the
        // one the per-phase-sqrt form picks); take the two square roots once
        // at the winning phase.
        let mut best_idx = 0usize;
        let mut best_metric_sq = 0.0f64;
        let mut win_energy: f64 = signal
            .iter()
            .take(m.min(signal.len()))
            .map(|z| z.norm_sqr())
            .sum();
        for (p, z) in outputs.iter().enumerate() {
            let denom_sq = win_energy * tpl_energy;
            let metric_sq = if denom_sq > 0.0 {
                z.norm_sqr() / denom_sq
            } else {
                0.0
            };
            if metric_sq > best_metric_sq {
                best_metric_sq = metric_sq;
                best_idx = p;
            }
            if p + m < signal.len() {
                win_energy += signal[p + m].norm_sqr() - signal[p].norm_sqr();
                win_energy = win_energy.max(0.0);
            }
        }
        scratch.put_complex(outputs);
        let best_metric = best_metric_sq.sqrt();
        AcquisitionResult {
            detected: best_metric >= self.config.threshold,
            offset: best_idx,
            metric: best_metric,
            stats,
            search_time_us: CorrelatorBank::search_time_us(&stats, self.config.clock_hz),
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::awgn::add_noise_snr;
    use uwb_sim::Rand;

    fn preamble_signal(offset: usize, periods: usize) -> (Vec<Complex>, Vec<Complex>) {
        // Build a chip-rate (1 sample/chip) preamble for simplicity.
        let chips = crate::pn::msequence_chips(7);
        let template: Vec<Complex> = chips.iter().map(|&c| Complex::new(c, 0.0)).collect();
        let mut sig = vec![Complex::ZERO; offset];
        for _ in 0..periods {
            sig.extend(template.iter());
        }
        sig.extend(vec![Complex::ZERO; 50]);
        (sig, template)
    }

    fn engine(template: Vec<Complex>, parallelism: usize) -> CoarseAcquisition {
        CoarseAcquisition::new(
            template,
            AcquisitionConfig {
                threshold: 0.5,
                parallelism,
                clock_hz: 1e9,
            },
        )
    }

    #[test]
    fn clean_acquisition_finds_offset() {
        let (sig, tpl) = preamble_signal(37, 3);
        let acq = engine(tpl, 8);
        let r = acq.acquire(&sig, 127);
        assert!(r.detected);
        assert_eq!(r.offset, 37);
        assert!(r.metric > 0.99);
    }

    #[test]
    fn noisy_acquisition_still_locks() {
        let (sig, tpl) = preamble_signal(90, 4);
        let mut rng = Rand::new(1);
        let (noisy, _) = add_noise_snr(&sig, -3.0, &mut rng); // per-sample -3 dB
        let acq = engine(tpl, 8);
        let r = acq.acquire(&noisy, 127);
        // 127-chip integration gain (~21 dB) makes -3 dB/sample easy.
        assert!(r.detected, "metric {}", r.metric);
        assert_eq!(r.offset, 90);
    }

    #[test]
    fn noise_only_does_not_false_alarm() {
        let chips = crate::pn::msequence_chips(7);
        let tpl: Vec<Complex> = chips.iter().map(|&c| Complex::new(c, 0.0)).collect();
        let mut rng = Rand::new(2);
        let noise = uwb_sim::awgn::complex_noise(500, 1.0, &mut rng);
        let acq = engine(tpl, 8);
        let r = acq.acquire(&noise, 127);
        assert!(!r.detected, "false alarm with metric {}", r.metric);
    }

    #[test]
    fn search_time_scales_with_parallelism() {
        let (sig, tpl) = preamble_signal(0, 3);
        let r1 = engine(tpl.clone(), 1).acquire(&sig, 127);
        let r32 = engine(tpl, 32).acquire(&sig, 127);
        assert!(r1.search_time_us > r32.search_time_us * 30.0);
        assert_eq!(r1.offset, r32.offset);
    }

    #[test]
    fn short_signal_handled() {
        let chips = crate::pn::msequence_chips(7);
        let tpl: Vec<Complex> = chips.iter().map(|&c| Complex::new(c, 0.0)).collect();
        let acq = engine(tpl, 4);
        let sig = vec![Complex::ONE; 10]; // shorter than the template
        let r = acq.acquire(&sig, 127);
        assert!(!r.detected);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        CoarseAcquisition::new(
            vec![Complex::ONE],
            AcquisitionConfig {
                threshold: 1.5,
                parallelism: 1,
                clock_hz: 1e9,
            },
        );
    }
}
