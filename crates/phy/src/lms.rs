//! Adaptive linear (LMS) equalization.
//!
//! The paper's back end is "programmable": the Viterbi (MLSE) demodulator is
//! the optimal ISI equalizer but its state count is exponential in the
//! channel memory. A linear transversal equalizer trained by LMS is the
//! cheap alternative — this module provides it both as a library feature and
//! as the ablation baseline the MLSE is judged against.

use uwb_dsp::Complex;

/// A complex transversal equalizer adapted by (normalized) LMS.
#[derive(Debug, Clone, PartialEq)]
pub struct LmsEqualizer {
    weights: Vec<Complex>,
    /// Index of the reference (cursor) tap.
    cursor: usize,
    /// LMS step size (normalized by input power per update).
    mu: f64,
    history: Vec<Complex>,
}

impl LmsEqualizer {
    /// Creates an equalizer with `n_taps` taps, the cursor at `cursor`, and
    /// step size `mu`. Weights start as a unit spike at the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `n_taps == 0`, `cursor >= n_taps`, or `mu` is not in
    /// `(0, 1]`.
    pub fn new(n_taps: usize, cursor: usize, mu: f64) -> Self {
        assert!(n_taps > 0, "need at least one tap");
        assert!(cursor < n_taps, "cursor must index a tap");
        assert!(mu > 0.0 && mu <= 1.0, "mu must be in (0, 1]");
        let mut weights = vec![Complex::ZERO; n_taps];
        weights[cursor] = Complex::ONE;
        LmsEqualizer {
            weights,
            cursor,
            mu,
            history: vec![Complex::ZERO; n_taps],
        }
    }

    /// The current weights.
    pub fn weights(&self) -> &[Complex] {
        &self.weights
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Always `false`; construction requires at least one tap.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn push_and_filter(&mut self, x: Complex) -> Complex {
        self.history.rotate_right(1);
        self.history[0] = x;
        self.history
            .iter()
            .zip(&self.weights)
            .map(|(&h, &w)| h * w)
            .sum()
    }

    fn adapt(&mut self, error: Complex) {
        let power: f64 = self.history.iter().map(|h| h.norm_sqr()).sum::<f64>() + 1e-12;
        let k = self.mu / power;
        for (w, &h) in self.weights.iter_mut().zip(&self.history) {
            *w += h.conj() * (error * k);
        }
    }

    /// Trains on a known symbol sequence (e.g. the preamble): feeds
    /// `received` and adapts toward `reference`. Symbols before the cursor
    /// fill the delay line; `reference[k]` is compared against the output
    /// when `received[k + cursor]` enters (standard cursor alignment —
    /// caller should therefore pass `received` with `cursor` leading
    /// samples of context, or accept the first `cursor` symbols being
    /// trained on zero context). Returns the mean squared error over the
    /// pass.
    pub fn train(&mut self, received: &[Complex], reference: &[Complex]) -> f64 {
        let n = received.len().min(reference.len());
        let mut mse = 0.0;
        for k in 0..n {
            let y = self.push_and_filter(received[k]);
            let e = reference[k] - y;
            self.adapt(e);
            mse += e.norm_sqr();
        }
        if n > 0 {
            mse / n as f64
        } else {
            0.0
        }
    }

    /// Equalizes a block without adaptation (frozen weights).
    pub fn equalize(&mut self, received: &[Complex]) -> Vec<Complex> {
        received.iter().map(|&x| self.push_and_filter(x)).collect()
    }

    /// Decision-directed equalization for BPSK: equalizes, slices, and keeps
    /// adapting against its own decisions.
    pub fn equalize_decision_directed(&mut self, received: &[Complex]) -> Vec<Complex> {
        received
            .iter()
            .map(|&x| {
                let y = self.push_and_filter(x);
                let decision = Complex::new(if y.re >= 0.0 { 1.0 } else { -1.0 }, 0.0);
                self.adapt(decision - y);
                y
            })
            .collect()
    }

    /// Clears the delay line (weights kept).
    pub fn reset_history(&mut self) {
        self.history.iter_mut().for_each(|h| *h = Complex::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlse::{apply_symbol_channel, MlseEqualizer};
    use uwb_sim::awgn::add_awgn_complex;
    use uwb_sim::Rand;

    fn random_symbols(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Rand::new(seed);
        (0..n).map(|_| rng.bit()).collect()
    }

    fn to_complex(symbols: &[bool]) -> Vec<Complex> {
        symbols
            .iter()
            .map(|&b| Complex::new(if b { 1.0 } else { -1.0 }, 0.0))
            .collect()
    }

    fn mild_channel() -> Vec<Complex> {
        vec![Complex::new(1.0, 0.0), Complex::new(0.4, 0.1)]
    }

    #[test]
    fn training_reduces_mse() {
        let h = mild_channel();
        let symbols = random_symbols(2000, 1);
        let rx = apply_symbol_channel(&symbols, &h);
        let reference = to_complex(&symbols);
        let mut eq = LmsEqualizer::new(9, 4, 0.2);
        // cursor delay: output lags reference by `cursor`; shift reference.
        let mut shifted = vec![Complex::ZERO; 4];
        shifted.extend_from_slice(&reference);
        let early = eq.train(&rx[..200], &shifted[..200]);
        let late = eq.train(&rx[1000..2000], &shifted[1000..2000]);
        assert!(late < early / 2.0, "early {early} late {late}");
        assert!(late < 0.1, "late MSE {late}");
    }

    #[test]
    fn equalized_decisions_are_correct() {
        let h = mild_channel();
        let symbols = random_symbols(3000, 2);
        let rx = apply_symbol_channel(&symbols, &h);
        let reference = to_complex(&symbols);
        let mut eq = LmsEqualizer::new(9, 4, 0.2);
        let mut shifted = vec![Complex::ZERO; 4];
        shifted.extend_from_slice(&reference);
        eq.train(&rx[..1500], &shifted[..1500]);
        eq.reset_history();
        let out = eq.equalize(&rx[1500..]);
        // Decisions (accounting for the cursor delay) match the symbols.
        let mut errs = 0;
        for (k, y) in out.iter().enumerate().skip(8) {
            let sym_idx = 1500 + k - 4;
            if sym_idx < symbols.len() {
                let decided = y.re > 0.0;
                if decided != symbols[sym_idx] {
                    errs += 1;
                }
            }
        }
        assert_eq!(errs, 0, "residual decision errors after training");
    }

    #[test]
    fn decision_directed_tracks_after_training() {
        let h = mild_channel();
        let symbols = random_symbols(3000, 3);
        let rx = apply_symbol_channel(&symbols, &h);
        let reference = to_complex(&symbols);
        let mut eq = LmsEqualizer::new(9, 4, 0.1);
        let mut shifted = vec![Complex::ZERO; 4];
        shifted.extend_from_slice(&reference);
        eq.train(&rx[..1000], &shifted[..1000]);
        let out = eq.equalize_decision_directed(&rx[1000..]);
        let mut errs = 0;
        for (k, y) in out.iter().enumerate().skip(8) {
            let sym_idx = 1000 + k - 4;
            if sym_idx < symbols.len() && (y.re > 0.0) != symbols[sym_idx] {
                errs += 1;
            }
        }
        assert!(errs <= 2, "{errs} errors in decision-directed mode");
    }

    #[test]
    fn mlse_beats_lms_on_severe_isi() {
        // Deep ISI with a spectral null: linear equalization enhances noise,
        // MLSE does not — the reason the paper carries a Viterbi demodulator.
        let h = vec![
            Complex::new(1.0, 0.0),
            Complex::new(0.9, 0.0),
            Complex::new(-0.4, 0.0),
        ];
        let symbols = random_symbols(4000, 4);
        let rx = apply_symbol_channel(&symbols, &h);
        let mut rng = Rand::new(5);
        let noisy = add_awgn_complex(&rx, 0.2, &mut rng);
        let reference = to_complex(&symbols);

        // LMS path.
        let mut eq = LmsEqualizer::new(13, 6, 0.1);
        let mut shifted = vec![Complex::ZERO; 6];
        shifted.extend_from_slice(&reference);
        eq.train(&noisy[..2000], &shifted[..2000]);
        let out = eq.equalize(&noisy[2000..]);
        let mut lms_errs = 0usize;
        let mut counted = 0usize;
        for (k, y) in out.iter().enumerate().skip(12) {
            let sym_idx = 2000 + k - 6;
            if sym_idx < symbols.len() {
                counted += 1;
                if (y.re > 0.0) != symbols[sym_idx] {
                    lms_errs += 1;
                }
            }
        }

        // MLSE path over the same tail.
        let mlse = MlseEqualizer::new(h.clone());
        let decided = mlse.equalize(&noisy);
        let mlse_errs = decided[2000 + 6..2000 + 6 + counted]
            .iter()
            .zip(&symbols[2000 + 6..2000 + 6 + counted])
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            mlse_errs < lms_errs,
            "MLSE {mlse_errs} vs LMS {lms_errs} over {counted}"
        );
    }

    #[test]
    #[should_panic(expected = "cursor")]
    fn bad_cursor_panics() {
        LmsEqualizer::new(4, 4, 0.1);
    }

    #[test]
    #[should_panic(expected = "mu")]
    fn bad_mu_panics() {
        LmsEqualizer::new(4, 0, 0.0);
    }
}
