//! Pulse modulation formats.
//!
//! The discrete prototype exists exactly to compare "different modulation
//! schemes" within a 500 MHz bandwidth (paper §3); these are the candidates:
//! antipodal BPSK, on-off keying, binary pulse-position, and 4-PAM. Each
//! symbol occupies one or more pulse *slots*; the modulator emits one
//! amplitude per slot and the demodulator decides from per-slot correlator
//! outputs.

use uwb_dsp::Complex;

/// Maximum pulse slots any supported format occupies per symbol (PPM-2).
pub const MAX_SLOTS_PER_SYMBOL: usize = 2;
/// Maximum bits any supported format carries per symbol (4-PAM).
pub const MAX_BITS_PER_SYMBOL: usize = 2;

/// A pulse modulation format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Antipodal binary phase-shift keying: ±pulse in a single slot.
    Bpsk,
    /// On-off keying: pulse or silence in a single slot.
    Ook,
    /// Binary pulse-position modulation: the pulse occupies slot 0 or 1.
    Ppm2,
    /// 4-level pulse-amplitude modulation, Gray-coded, single slot.
    Pam4,
}

impl Modulation {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk | Modulation::Ook | Modulation::Ppm2 => 1,
            Modulation::Pam4 => 2,
        }
    }

    /// Pulse slots occupied per symbol.
    pub fn slots_per_symbol(self) -> usize {
        match self {
            Modulation::Ppm2 => 2,
            _ => 1,
        }
    }

    /// `true` if the format can be demodulated without carrier phase
    /// (energy detection).
    pub fn supports_noncoherent(self) -> bool {
        matches!(self, Modulation::Ook | Modulation::Ppm2)
    }

    /// Average symbol energy with the amplitudes produced by [`map`], when
    /// the unit-energy pulse carries amplitude `a` (energy `a²`).
    ///
    /// [`map`]: Modulation::map
    pub fn mean_symbol_energy(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Ook => 0.5,
            Modulation::Ppm2 => 1.0,
            Modulation::Pam4 => 1.0, // levels scaled to unit mean energy
        }
    }

    /// Maps `bits_per_symbol` bits to per-slot amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.bits_per_symbol()`.
    pub fn map(self, bits: &[bool]) -> Vec<f64> {
        let mut amps = [0.0; MAX_SLOTS_PER_SYMBOL];
        let n = self.map_into(bits, &mut amps);
        amps[..n].to_vec()
    }

    /// [`Modulation::map`] into a caller-owned fixed array (allocation-free).
    /// Returns the number of slots written.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.bits_per_symbol()`.
    pub fn map_into(self, bits: &[bool], amps: &mut [f64; MAX_SLOTS_PER_SYMBOL]) -> usize {
        assert_eq!(
            bits.len(),
            self.bits_per_symbol(),
            "wrong number of bits for {self:?}"
        );
        match self {
            Modulation::Bpsk => {
                amps[0] = if bits[0] { 1.0 } else { -1.0 };
                1
            }
            Modulation::Ook => {
                amps[0] = if bits[0] { 1.0 } else { 0.0 };
                1
            }
            Modulation::Ppm2 => {
                if bits[0] {
                    amps[0] = 0.0;
                    amps[1] = 1.0;
                } else {
                    amps[0] = 1.0;
                    amps[1] = 0.0;
                }
                2
            }
            Modulation::Pam4 => {
                // Gray map: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3, scaled by
                // 1/sqrt(5) for unit mean energy.
                let level = match (bits[0], bits[1]) {
                    (false, false) => -3.0,
                    (false, true) => -1.0,
                    (true, true) => 1.0,
                    (true, false) => 3.0,
                };
                amps[0] = level / 5.0f64.sqrt();
                1
            }
        }
    }

    /// Coherent demodulation from per-slot matched-filter outputs. Returns
    /// the decided bits and a soft metric per bit (sign = decision,
    /// magnitude = confidence), suitable for the soft Viterbi decoder.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() != self.slots_per_symbol()`.
    pub fn demap(self, slots: &[Complex]) -> (Vec<bool>, Vec<f64>) {
        let mut bits = [false; MAX_BITS_PER_SYMBOL];
        let mut soft = [0.0; MAX_BITS_PER_SYMBOL];
        let n = self.demap_into(slots, &mut bits, &mut soft);
        (bits[..n].to_vec(), soft[..n].to_vec())
    }

    /// [`Modulation::demap`] into caller-owned fixed arrays
    /// (allocation-free). Returns the number of bits written.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len() != self.slots_per_symbol()`.
    pub fn demap_into(
        self,
        slots: &[Complex],
        bits: &mut [bool; MAX_BITS_PER_SYMBOL],
        soft: &mut [f64; MAX_BITS_PER_SYMBOL],
    ) -> usize {
        assert_eq!(
            slots.len(),
            self.slots_per_symbol(),
            "wrong number of slots for {self:?}"
        );
        match self {
            Modulation::Bpsk => {
                let m = slots[0].re;
                bits[0] = m > 0.0;
                soft[0] = m;
                1
            }
            Modulation::Ook => {
                // Threshold halfway between 0 and the nominal amplitude 1.
                let m = slots[0].re - 0.5;
                bits[0] = m > 0.0;
                soft[0] = m;
                1
            }
            Modulation::Ppm2 => {
                let m = slots[1].re - slots[0].re;
                bits[0] = m > 0.0;
                soft[0] = m;
                1
            }
            Modulation::Pam4 => {
                let x = slots[0].re * 5.0f64.sqrt();
                // Gray demap with per-bit soft metrics.
                // bit0 (MSB): sign. bit1: |x| < 2.
                bits[0] = x > 0.0;
                bits[1] = x.abs() < 2.0;
                soft[0] = x;
                soft[1] = 2.0 - x.abs();
                2
            }
        }
    }

    /// Non-coherent (energy) demodulation for formats that support it.
    /// Returns `None` for coherent-only formats.
    pub fn demap_noncoherent(self, slots: &[Complex]) -> Option<(Vec<bool>, Vec<f64>)> {
        assert_eq!(slots.len(), self.slots_per_symbol());
        match self {
            Modulation::Ook => {
                let e = slots[0].norm_sqr() - 0.25;
                Some((vec![e > 0.0], vec![e]))
            }
            Modulation::Ppm2 => {
                let m = slots[1].norm_sqr() - slots[0].norm_sqr();
                Some((vec![m > 0.0], vec![m]))
            }
            _ => None,
        }
    }

    /// All supported formats.
    pub fn all() -> [Modulation; 4] {
        [
            Modulation::Bpsk,
            Modulation::Ook,
            Modulation::Ppm2,
            Modulation::Pam4,
        ]
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Ook => "OOK",
            Modulation::Ppm2 => "2-PPM",
            Modulation::Pam4 => "4-PAM",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex {
        Complex::new(re, 0.0)
    }

    #[test]
    fn round_trip_all_formats_all_symbols() {
        for m in Modulation::all() {
            let nbits = m.bits_per_symbol();
            for pattern in 0..(1usize << nbits) {
                let bits: Vec<bool> = (0..nbits).map(|i| (pattern >> i) & 1 != 0).collect();
                let amps = m.map(&bits);
                assert_eq!(amps.len(), m.slots_per_symbol());
                let slots: Vec<Complex> = amps.iter().map(|&a| c(a)).collect();
                let (decided, soft) = m.demap(&slots);
                assert_eq!(decided, bits, "{m} pattern {pattern}");
                assert_eq!(soft.len(), nbits);
            }
        }
    }

    #[test]
    fn noncoherent_round_trip() {
        for m in [Modulation::Ook, Modulation::Ppm2] {
            for bit in [false, true] {
                let amps = m.map(&[bit]);
                // Random carrier phase — noncoherent must still decide right.
                let slots: Vec<Complex> =
                    amps.iter().map(|&a| Complex::from_polar(a, 1.234)).collect();
                let (decided, _) = m.demap_noncoherent(&slots).unwrap();
                assert_eq!(decided, vec![bit], "{m} bit {bit}");
            }
        }
        assert!(Modulation::Bpsk.demap_noncoherent(&[c(1.0)]).is_none());
    }

    #[test]
    fn mean_energies() {
        // PAM4 levels average to unit energy: (9+1+1+9)/4/5 = 1.
        let total: f64 = (0..4)
            .map(|p| {
                let bits = [p & 1 != 0, (p >> 1) & 1 != 0];
                let a = Modulation::Pam4.map(&bits)[0];
                a * a
            })
            .sum();
        assert!((total / 4.0 - 1.0).abs() < 1e-12);
        assert_eq!(Modulation::Ook.mean_symbol_energy(), 0.5);
    }

    #[test]
    fn pam4_gray_coding_adjacent_levels() {
        // Adjacent amplitude levels must differ in exactly one bit.
        let mut level_bits: Vec<(f64, Vec<bool>)> = (0..4)
            .map(|p| {
                let bits = vec![(p >> 1) & 1 != 0, p & 1 != 0];
                (Modulation::Pam4.map(&bits)[0], bits)
            })
            .collect();
        level_bits.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in level_bits.windows(2) {
            let diff = w[0]
                .1
                .iter()
                .zip(&w[1].1)
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1, "not Gray: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn soft_metric_sign_matches_decision() {
        let m = Modulation::Bpsk;
        let (bits, soft) = m.demap(&[c(-0.3)]);
        assert_eq!(bits, vec![false]);
        assert!(soft[0] < 0.0);
    }

    #[test]
    fn ppm_slots() {
        assert_eq!(Modulation::Ppm2.slots_per_symbol(), 2);
        assert_eq!(Modulation::Ppm2.map(&[false]), vec![1.0, 0.0]);
        assert_eq!(Modulation::Ppm2.map(&[true]), vec![0.0, 1.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Modulation::Bpsk.to_string(), "BPSK");
        assert_eq!(Modulation::Pam4.to_string(), "4-PAM");
    }

    #[test]
    #[should_panic(expected = "wrong number of bits")]
    fn wrong_bit_count_panics() {
        Modulation::Pam4.map(&[true]);
    }
}
