//! Programmable RAKE receiver.
//!
//! Paper §1: "The energy spread caused by the multipath can be compensated
//! using a RAKE receiver." Each finger samples the matched-filter output at
//! one estimated path delay; maximal-ratio combining weights each finger by
//! the conjugate of its estimated gain. The finger count is the
//! programmable power/performance knob of §3.

use crate::chanest::ChannelEstimate;
use uwb_dsp::Complex;

/// A RAKE receiver built from a channel estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct RakeReceiver {
    /// `(delay_samples, conj(gain))` per finger.
    fingers: Vec<(usize, Complex)>,
    /// Sum of |gain|² over fingers (MRC normalization).
    total_weight: f64,
}

impl RakeReceiver {
    /// Selects the `n_fingers` strongest paths from `estimate` (selective
    /// RAKE / S-RAKE).
    ///
    /// # Panics
    ///
    /// Panics if `n_fingers == 0`.
    pub fn from_estimate(estimate: &ChannelEstimate, n_fingers: usize) -> Self {
        let mut rake = RakeReceiver {
            fingers: Vec::new(),
            total_weight: 0.0,
        };
        let mut idx = Vec::new();
        rake.rebuild_from_estimate(estimate, n_fingers, &mut idx);
        rake
    }

    /// Rebuilds this RAKE in place from a fresh channel estimate, reusing
    /// the finger storage and a caller-owned index buffer — identical
    /// selection and weights to [`RakeReceiver::from_estimate`], but
    /// allocation-free once capacities suffice (the per-trial form).
    ///
    /// # Panics
    ///
    /// Panics if `n_fingers == 0`.
    pub fn rebuild_from_estimate(
        &mut self,
        estimate: &ChannelEstimate,
        n_fingers: usize,
        idx_scratch: &mut Vec<usize>,
    ) {
        assert!(n_fingers > 0, "need at least one finger");
        estimate.select_strongest_into(n_fingers, idx_scratch);
        let taps = estimate.taps();
        self.fingers.clear();
        self.fingers
            .extend(idx_scratch.iter().map(|&i| (i, taps[i].conj())));
        self.total_weight = self.fingers.iter().map(|(_, w)| w.norm_sqr()).sum();
    }

    /// A single-finger "RAKE" (plain matched filter at the strongest path) —
    /// the baseline the RAKE is compared against.
    pub fn single_finger(estimate: &ChannelEstimate) -> Self {
        RakeReceiver::from_estimate(estimate, 1)
    }

    /// Number of active fingers.
    pub fn finger_count(&self) -> usize {
        self.fingers.len()
    }

    /// The finger delays and combining weights.
    pub fn fingers(&self) -> &[(usize, Complex)] {
        &self.fingers
    }

    /// Fraction of the estimate's energy the fingers capture.
    pub fn energy_capture(&self, estimate: &ChannelEstimate) -> f64 {
        let e = estimate.energy();
        if e > 0.0 {
            self.total_weight / e
        } else {
            0.0
        }
    }

    /// Combines matched-filter outputs for a symbol whose prompt (first-
    /// path) sample index is `prompt`: output =
    /// `Σ_f conj(h_f) · mf[prompt + d_f] / Σ_f |h_f|²`.
    ///
    /// `mf` is the pulse-matched-filter output stream; delays address the
    /// multipath echoes of the same transmitted pulse.
    pub fn combine(&self, mf: &[Complex], prompt: usize) -> Complex {
        let mut acc = Complex::ZERO;
        for &(d, w) in &self.fingers {
            let idx = prompt + d;
            if idx < mf.len() {
                acc += mf[idx] * w;
            }
        }
        if self.total_weight > 0.0 {
            acc / self.total_weight
        } else {
            acc
        }
    }

    /// [`RakeReceiver::combine`] without a precomputed matched-filter
    /// stream: evaluates the pulse correlation directly from the sample
    /// record, only at the finger delays actually combined.
    ///
    /// `O(fingers × pulse_len)` per symbol instead of an `O(N log N)` FFT
    /// over the whole record — the dominant cost of the known-timing BER
    /// path, where only `slots × fingers` matched-filter values are ever
    /// read. Results match [`RakeReceiver::combine`] over
    /// `cross_correlate_fft` output up to floating-point rounding.
    pub fn combine_direct(
        &self,
        samples: &[Complex],
        pulse: &[Complex],
        prompt: usize,
    ) -> Complex {
        // Valid correlation lags: 0 ..= samples.len() - pulse.len(), the
        // same range `combine` accepts via `idx < mf.len()`.
        let n_valid = (samples.len() + 1).saturating_sub(pulse.len());
        // A real pulse (the UWB monocycle templates always are at baseband)
        // needs 2 real MACs per sample instead of 4; the only representational
        // difference vs the complex loop is the sign of exact zeros.
        let real_pulse = pulse.iter().all(|p| p.im == 0.0);
        let mut acc = Complex::ZERO;
        for &(d, w) in &self.fingers {
            let idx = prompt + d;
            if idx < n_valid {
                let c = if real_pulse {
                    let mut re = 0.0;
                    let mut im = 0.0;
                    for (j, &p) in pulse.iter().enumerate() {
                        let s = samples[idx + j];
                        re += s.re * p.re;
                        im += s.im * p.re;
                    }
                    Complex::new(re, im)
                } else {
                    let mut c = Complex::ZERO;
                    for (j, &p) in pulse.iter().enumerate() {
                        c += samples[idx + j] * p.conj();
                    }
                    c
                };
                acc += c * w;
            }
        }
        if self.total_weight > 0.0 {
            acc / self.total_weight
        } else {
            acc
        }
    }

    /// The *post-combining* symbol-spaced channel response: the residual
    /// inter-symbol interference the RAKE output still contains when the
    /// delay spread exceeds the symbol period. Tap `l` is
    /// `Σ_f w_f · ĥ[l·stride + d_f] / Σ_f |h_f|²`, so tap 0 is 1 by
    /// construction. This is the channel the MLSE (Viterbi demodulator)
    /// equalizes.
    pub fn symbol_spaced_response(
        &self,
        estimate: &ChannelEstimate,
        stride: usize,
        n_taps: usize,
    ) -> Vec<Complex> {
        let taps = estimate.taps();
        (0..n_taps)
            .map(|l| {
                let mut acc = Complex::ZERO;
                for &(d, w) in &self.fingers {
                    let idx = l * stride + d;
                    if idx < taps.len() {
                        acc += taps[idx] * w;
                    }
                }
                if self.total_weight > 0.0 {
                    acc / self.total_weight
                } else {
                    acc
                }
            })
            .collect()
    }

    /// Combines a whole stream of symbol positions at a fixed stride.
    pub fn combine_stream(
        &self,
        mf: &[Complex],
        first_prompt: usize,
        stride: usize,
        count: usize,
    ) -> Vec<Complex> {
        (0..count)
            .map(|k| self.combine(mf, first_prompt + k * stride))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::awgn::add_awgn_complex;
    use uwb_sim::Rand;

    /// Builds a matched-filter output stream for BPSK symbols through a
    /// sample-spaced channel `h` at `stride` samples per symbol.
    fn mf_stream(symbols: &[f64], h: &[Complex], stride: usize) -> Vec<Complex> {
        let n = symbols.len() * stride + h.len() + 8;
        let mut out = vec![Complex::ZERO; n];
        for (k, &s) in symbols.iter().enumerate() {
            for (d, &g) in h.iter().enumerate() {
                out[k * stride + d] += g * s;
            }
        }
        out
    }

    fn test_channel() -> Vec<Complex> {
        vec![
            Complex::new(0.8, 0.0),
            Complex::ZERO,
            Complex::new(0.3, 0.3),
            Complex::ZERO,
            Complex::new(0.0, -0.2),
        ]
    }

    #[test]
    fn mrc_recovers_clean_symbols() {
        let h = test_channel();
        let est = ChannelEstimate::new(h.clone());
        let rake = RakeReceiver::from_estimate(&est, 3);
        let symbols = [1.0, -1.0, 1.0, 1.0, -1.0];
        let mf = mf_stream(&symbols, &h, 16);
        let out = rake.combine_stream(&mf, 0, 16, symbols.len());
        for (z, &s) in out.iter().zip(&symbols) {
            assert!((z.re - s).abs() < 0.05, "{z} vs {s}");
            assert!(z.im.abs() < 0.05);
        }
    }

    #[test]
    fn more_fingers_capture_more_energy() {
        let est = ChannelEstimate::new(test_channel());
        let mut prev = 0.0;
        for n in [1usize, 2, 3] {
            let rake = RakeReceiver::from_estimate(&est, n);
            let cap = rake.energy_capture(&est);
            assert!(cap > prev);
            prev = cap;
        }
        let all = RakeReceiver::from_estimate(&est, 10);
        assert!((all.energy_capture(&est) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rake_beats_single_finger_in_noise() {
        // Monte-Carlo SNR comparison on a dispersive channel.
        let h = test_channel();
        let est = ChannelEstimate::new(h.clone());
        let rake = RakeReceiver::from_estimate(&est, 3);
        let single = RakeReceiver::single_finger(&est);
        let mut rng = Rand::new(3);
        let symbols: Vec<f64> = (0..2000)
            .map(|_| if rng.bit() { 1.0 } else { -1.0 })
            .collect();
        let mf = mf_stream(&symbols, &h, 8);
        let noisy = add_awgn_complex(&mf, 0.3, &mut rng);
        let err = |rx: &RakeReceiver| -> usize {
            rx.combine_stream(&noisy, 0, 8, symbols.len())
                .iter()
                .zip(&symbols)
                .filter(|(z, &s)| (z.re > 0.0) != (s > 0.0))
                .count()
        };
        let e_rake = err(&rake);
        let e_single = err(&single);
        assert!(
            e_rake < e_single,
            "rake {e_rake} errors vs single {e_single}"
        );
    }

    #[test]
    fn finger_selection_picks_strongest() {
        let est = ChannelEstimate::new(test_channel());
        let rake = RakeReceiver::from_estimate(&est, 2);
        let delays: Vec<usize> = rake.fingers().iter().map(|&(d, _)| d).collect();
        assert!(delays.contains(&0)); // 0.8 tap
        assert!(delays.contains(&2)); // 0.3+0.3i tap
    }

    #[test]
    fn combine_out_of_range_is_partial() {
        let est = ChannelEstimate::new(test_channel());
        let rake = RakeReceiver::from_estimate(&est, 3);
        let mf = vec![Complex::ONE; 3]; // too short for delay-4 finger
        let z = rake.combine(&mf, 0);
        assert!(z.is_finite());
    }

    #[test]
    fn weights_are_conjugate_gains() {
        let h = vec![Complex::new(0.0, 0.5)];
        let est = ChannelEstimate::new(h);
        let rake = RakeReceiver::from_estimate(&est, 1);
        assert_eq!(rake.fingers()[0].1, Complex::new(0.0, -0.5));
    }

    #[test]
    fn symbol_spaced_response_unit_main_tap() {
        // A channel spreading past one symbol: post-RAKE response has tap 0
        // equal to 1 and a real residual ISI tap.
        let mut taps = vec![Complex::ZERO; 24];
        taps[0] = Complex::new(0.9, 0.0);
        taps[3] = Complex::new(0.4, 0.1);
        taps[10] = Complex::new(0.3, -0.2); // one symbol later at stride 8... use stride 8
        let est = ChannelEstimate::new(taps);
        let rake = RakeReceiver::from_estimate(&est, 2); // picks taps 0 and 3
        let g = rake.symbol_spaced_response(&est, 8, 3);
        assert_eq!(g.len(), 3);
        assert!((g[0] - Complex::ONE).norm() < 1e-9, "{:?}", g[0]);
        // Tap 1 collects the echo at delay 8+d_f: d=0 -> taps[8]=0,
        // d=3 -> taps[11]=0; with finger delays {0,3}: l=1 uses taps[8],taps[11],
        // both zero... pick stride so the echo lands: taps[10] with d=... no
        // finger at 2. So g[1] is 0 here; instead verify vanishing ISI case.
        let flat = ChannelEstimate::new(vec![Complex::ONE]);
        let r1 = RakeReceiver::from_estimate(&flat, 1);
        let g1 = r1.symbol_spaced_response(&flat, 4, 2);
        assert!((g1[0] - Complex::ONE).norm() < 1e-12);
        assert_eq!(g1[1], Complex::ZERO);
    }

    #[test]
    fn symbol_spaced_response_sees_echo() {
        // Echo exactly one stride after a finger.
        let mut taps = vec![Complex::ZERO; 16];
        taps[2] = Complex::new(1.0, 0.0);
        taps[10] = Complex::new(0.5, 0.0); // = 2 + stride 8
        let est = ChannelEstimate::new(taps);
        let rake = RakeReceiver::from_estimate(&est, 1); // finger at 2 only
        let g = rake.symbol_spaced_response(&est, 8, 2);
        assert!((g[0] - Complex::ONE).norm() < 1e-9);
        assert!((g[1] - Complex::new(0.5, 0.0) * (1.0 / 1.0)).norm() < 1e-9, "{:?}", g[1]);
    }

    #[test]
    #[should_panic(expected = "at least one finger")]
    fn zero_fingers_panics() {
        let est = ChannelEstimate::new(vec![Complex::ONE]);
        RakeReceiver::from_estimate(&est, 0);
    }
}
