//! Packet framing: preamble, SFD, header, payload.
//!
//! Frame layout (in pulse slots):
//!
//! ```text
//! | preamble (m-seq × repeats) | SFD (Barker-13) | header | payload |
//! ```
//!
//! The preamble drives acquisition and channel estimation; the SFD marks the
//! end of the preamble; the header (32 bits, BPSK, CRC-8) carries the payload
//! length and mode flags; the payload is scrambled, optionally FEC-encoded,
//! and modulated per the link configuration. A CRC-32 FCS protects the
//! payload.

use crate::config::Gen2Config;
use crate::crc::{crc32_ieee, crc8};
use crate::error::PhyError;
use crate::fec::{bits_to_bytes, bytes_to_bits_into};
use crate::modulation::{Modulation, MAX_BITS_PER_SYMBOL, MAX_SLOTS_PER_SYMBOL};
use crate::pn::{msequence_chips_into, BARKER13};
use crate::scrambler::Scrambler;
use uwb_dsp::Complex;

/// Maximum payload size in bytes (12-bit length field).
pub const MAX_PAYLOAD: usize = 4095;

/// Decoded header contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Payload length in bytes (before FEC, excluding the CRC-32).
    pub payload_len: usize,
    /// Modulation announced for the payload.
    pub modulation: Modulation,
    /// Whether the payload is convolutionally encoded.
    pub fec: bool,
}

impl Header {
    /// Serializes to the 4-byte over-the-air form.
    pub fn to_bytes(self) -> [u8; 4] {
        let mode = match self.modulation {
            Modulation::Bpsk => 0u8,
            Modulation::Ook => 1,
            Modulation::Ppm2 => 2,
            Modulation::Pam4 => 3,
        };
        let flags = mode | ((self.fec as u8) << 2);
        let b0 = (self.payload_len >> 8) as u8 & 0x0F;
        let b1 = (self.payload_len & 0xFF) as u8;
        let mut out = [b0, b1, flags, 0];
        out[3] = crc8(&out[..3]);
        out
    }

    /// Parses and validates the 4-byte header.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::HeaderInvalid`] on CRC failure.
    pub fn from_bytes(bytes: &[u8; 4]) -> Result<Header, PhyError> {
        if crc8(&bytes[..3]) != bytes[3] {
            return Err(PhyError::HeaderInvalid);
        }
        let payload_len = ((bytes[0] as usize & 0x0F) << 8) | bytes[1] as usize;
        let modulation = match bytes[2] & 0x03 {
            0 => Modulation::Bpsk,
            1 => Modulation::Ook,
            2 => Modulation::Ppm2,
            _ => Modulation::Pam4,
        };
        let fec = bytes[2] & 0x04 != 0;
        Ok(Header {
            payload_len,
            modulation,
            fec,
        })
    }
}

/// The slot-amplitude representation of a frame (one amplitude per pulse
/// slot, before pulse shaping).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameSlots {
    /// Preamble chip amplitudes (±1).
    pub preamble: Vec<f64>,
    /// SFD chip amplitudes (±1).
    pub sfd: Vec<f64>,
    /// Header slot amplitudes (BPSK, spread).
    pub header: Vec<f64>,
    /// Payload slot amplitudes (per configured modulation, spread).
    pub payload: Vec<f64>,
}

impl FrameSlots {
    /// All slots concatenated in transmission order.
    pub fn concat(&self) -> Vec<f64> {
        let mut v =
            Vec::with_capacity(self.preamble.len() + self.sfd.len() + self.header.len()
                + self.payload.len());
        v.extend_from_slice(&self.preamble);
        v.extend_from_slice(&self.sfd);
        v.extend_from_slice(&self.header);
        v.extend_from_slice(&self.payload);
        v
    }

    /// Slot index where the header begins (after preamble + SFD).
    pub fn header_start(&self) -> usize {
        self.preamble.len() + self.sfd.len()
    }

    /// Slot index where the payload begins.
    pub fn payload_start(&self) -> usize {
        self.header_start() + self.header.len()
    }
}

/// Reusable working storage for the allocation-free framing and decoding
/// paths ([`build_frame_into`], [`decode_payload_bits_into`],
/// [`reference_payload_bits_into`]). One per Monte-Carlo worker; every
/// buffer grows to its high-water mark on first use and is reused
/// thereafter.
#[derive(Debug, Default)]
pub struct FrameScratch {
    /// One m-sequence preamble period.
    chips: Vec<f64>,
    /// Scrambled payload || CRC bytes.
    body: Vec<u8>,
    /// Bit-stream working buffer.
    bits: Vec<bool>,
    /// Hard decisions from the demapper.
    hard: Vec<bool>,
    /// Soft metrics from the demapper.
    soft: Vec<f64>,
}

impl FrameScratch {
    /// Creates an empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        FrameScratch::default()
    }
}

/// Maps a bit stream to spread slot amplitudes under `modulation` into a
/// caller-owned buffer, using fixed stack arrays per symbol
/// (allocation-free once the capacity suffices).
fn bits_to_slots_into(bits: &[bool], modulation: Modulation, ppb: usize, out: &mut Vec<f64>) {
    let bps = modulation.bits_per_symbol();
    out.clear();
    let mut idx = 0;
    while idx < bits.len() {
        let mut symbol_bits = [false; MAX_BITS_PER_SYMBOL];
        for (k, b) in symbol_bits.iter_mut().enumerate().take(bps) {
            *b = *bits.get(idx + k).unwrap_or(&false); // zero-pad
        }
        let mut amps = [0.0; MAX_SLOTS_PER_SYMBOL];
        let n_slots = modulation.map_into(&symbol_bits[..bps], &mut amps);
        // Spread: the whole symbol repeated `ppb` times.
        for _ in 0..ppb {
            out.extend_from_slice(&amps[..n_slots]);
        }
        idx += bps;
    }
}

/// Builds the slot-amplitude frame for a payload.
///
/// # Errors
///
/// Returns [`PhyError::PayloadTooLarge`] if the payload exceeds
/// [`MAX_PAYLOAD`].
pub fn build_frame(payload: &[u8], config: &Gen2Config) -> Result<FrameSlots, PhyError> {
    let mut frame = FrameSlots::default();
    let mut scratch = FrameScratch::new();
    build_frame_into(payload, config, &mut frame, &mut scratch)?;
    Ok(frame)
}

/// [`build_frame`] into a caller-owned [`FrameSlots`], drawing all working
/// buffers from `scratch` — identical output, zero steady-state heap
/// allocation (FEC encoding, when enabled, is the documented exception).
///
/// # Errors
///
/// Returns [`PhyError::PayloadTooLarge`] if the payload exceeds
/// [`MAX_PAYLOAD`].
pub fn build_frame_into(
    payload: &[u8],
    config: &Gen2Config,
    frame: &mut FrameSlots,
    scratch: &mut FrameScratch,
) -> Result<(), PhyError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(PhyError::PayloadTooLarge {
            requested: payload.len(),
            max: MAX_PAYLOAD,
        });
    }
    let ppb = config.pulses_per_bit;

    // Preamble + SFD.
    msequence_chips_into(config.preamble_degree, &mut scratch.chips);
    frame.preamble.clear();
    for _ in 0..config.preamble_repeats {
        frame.preamble.extend_from_slice(&scratch.chips);
    }
    frame.sfd.clear();
    frame.sfd.extend_from_slice(&BARKER13);

    // Header: always BPSK with the same spreading.
    let header = Header {
        payload_len: payload.len(),
        modulation: config.modulation,
        fec: config.fec.is_some(),
    };
    bytes_to_bits_into(&header.to_bytes(), &mut scratch.bits);
    bits_to_slots_into(&scratch.bits, Modulation::Bpsk, ppb, &mut frame.header);

    // Payload: scramble(payload || crc32) -> optional FEC -> modulate.
    scratch.body.clear();
    scratch.body.extend_from_slice(payload);
    let fcs = crc32_ieee(payload);
    scratch.body.extend_from_slice(&fcs.to_be_bytes());
    let mut scrambler = Scrambler::default();
    scrambler.apply_bytes(&mut scratch.body);
    bytes_to_bits_into(&scratch.body, &mut scratch.bits);
    if let Some(code) = config.fec {
        // The convolutional encoder allocates its output (FEC is outside
        // the zero-allocation steady-state contract).
        let coded = code.encode(&scratch.bits);
        scratch.bits.clear();
        scratch.bits.extend_from_slice(&coded);
    }
    bits_to_slots_into(&scratch.bits, config.modulation, ppb, &mut frame.payload);
    Ok(())
}

/// Number of payload slots for a given payload length under `config`.
pub fn payload_slot_count(payload_len: usize, config: &Gen2Config) -> usize {
    let raw_bits = 8 * (payload_len + 4); // + CRC-32
    let coded_bits = match config.fec {
        Some(code) => 2 * (raw_bits + code.constraint_length as usize - 1),
        None => raw_bits,
    };
    let bps = config.modulation.bits_per_symbol();
    let symbols = coded_bits.div_ceil(bps);
    symbols * config.modulation.slots_per_symbol() * config.pulses_per_bit
}

/// Number of header slots under `config`.
pub fn header_slot_count(config: &Gen2Config) -> usize {
    32 * config.pulses_per_bit
}

/// Combines spread repetitions and demaps a slot-statistic stream back to
/// soft bit metrics. Inverse of [`bits_to_slots`]'s layout.
fn slots_to_soft(
    stats: &[Complex],
    modulation: Modulation,
    ppb: usize,
) -> (Vec<bool>, Vec<f64>) {
    let mut bits = Vec::new();
    let mut soft = Vec::new();
    slots_to_soft_into(stats, modulation, ppb, &mut bits, &mut soft);
    (bits, soft)
}

/// [`slots_to_soft`] into caller-owned buffers, with fixed stack arrays per
/// symbol (allocation-free once the capacities suffice).
fn slots_to_soft_into(
    stats: &[Complex],
    modulation: Modulation,
    ppb: usize,
    bits: &mut Vec<bool>,
    soft: &mut Vec<f64>,
) {
    let sps = modulation.slots_per_symbol();
    let group = sps * ppb;
    bits.clear();
    soft.clear();
    for chunk in stats.chunks_exact(group) {
        // Sum repetitions: repetition r's slot s is chunk[r * sps + s].
        let mut combined = [Complex::ZERO; MAX_SLOTS_PER_SYMBOL];
        for (s, c) in combined.iter_mut().enumerate().take(sps) {
            *c = (0..ppb).map(|r| chunk[r * sps + s]).sum::<Complex>() / ppb as f64;
        }
        let mut b = [false; MAX_BITS_PER_SYMBOL];
        let mut m = [0.0; MAX_BITS_PER_SYMBOL];
        let nb = modulation.demap_into(&combined[..sps], &mut b, &mut m);
        bits.extend_from_slice(&b[..nb]);
        soft.extend_from_slice(&m[..nb]);
    }
}

/// Decodes header slot statistics.
///
/// # Errors
///
/// Returns [`PhyError::HeaderInvalid`] on CRC failure or short input.
pub fn decode_header(stats: &[Complex], config: &Gen2Config) -> Result<Header, PhyError> {
    if stats.len() < header_slot_count(config) {
        return Err(PhyError::TruncatedInput);
    }
    let (bits, _) = slots_to_soft(
        &stats[..header_slot_count(config)],
        Modulation::Bpsk,
        config.pulses_per_bit,
    );
    let bytes = bits_to_bytes(&bits);
    let arr: [u8; 4] = bytes[..4].try_into().map_err(|_| PhyError::HeaderInvalid)?;
    Header::from_bytes(&arr)
}

/// Decodes payload slot statistics down to the descrambled information bits
/// (payload plus CRC-32, `8·(payload_len + 4)` bits) *without* CRC gating —
/// the raw-BER measurement path.
///
/// # Errors
///
/// Returns [`PhyError::TruncatedInput`] if fewer slots than the length
/// implies are provided.
pub fn decode_payload_bits(
    stats: &[Complex],
    payload_len: usize,
    config: &Gen2Config,
) -> Result<Vec<bool>, PhyError> {
    let mut scratch = FrameScratch::new();
    let mut out = Vec::new();
    decode_payload_bits_into(stats, payload_len, config, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`decode_payload_bits`] into a caller-owned buffer, drawing working
/// storage from `scratch` — identical output, zero steady-state heap
/// allocation (the soft Viterbi decoder, when FEC is enabled, is the
/// documented exception).
///
/// # Errors
///
/// Same as [`decode_payload_bits`].
pub fn decode_payload_bits_into(
    stats: &[Complex],
    payload_len: usize,
    config: &Gen2Config,
    scratch: &mut FrameScratch,
    out: &mut Vec<bool>,
) -> Result<(), PhyError> {
    let needed = payload_slot_count(payload_len, config);
    if stats.len() < needed {
        return Err(PhyError::TruncatedInput);
    }
    slots_to_soft_into(
        &stats[..needed],
        config.modulation,
        config.pulses_per_bit,
        &mut scratch.hard,
        &mut scratch.soft,
    );
    let raw_bits = 8 * (payload_len + 4);
    out.clear();
    match config.fec {
        Some(code) => {
            let coded_len = 2 * (raw_bits + code.constraint_length as usize - 1);
            // The Viterbi trellis allocates (FEC is outside the
            // zero-allocation steady-state contract).
            out.extend_from_slice(&code.decode_soft(&scratch.soft[..coded_len]));
        }
        None => out.extend_from_slice(&scratch.hard),
    }
    out.truncate(raw_bits);
    let mut scrambler = Scrambler::default();
    scrambler.apply_bits(out);
    Ok(())
}

/// The ground-truth descrambled bit stream for a payload (payload plus
/// CRC-32), to compare against [`decode_payload_bits`] output when counting
/// bit errors.
pub fn reference_payload_bits(payload: &[u8]) -> Vec<bool> {
    let mut scratch = FrameScratch::new();
    let mut out = Vec::new();
    reference_payload_bits_into(payload, &mut scratch, &mut out);
    out
}

/// [`reference_payload_bits`] into a caller-owned buffer, drawing working
/// storage from `scratch` (allocation-free once the capacities suffice).
pub fn reference_payload_bits_into(
    payload: &[u8],
    scratch: &mut FrameScratch,
    out: &mut Vec<bool>,
) {
    scratch.body.clear();
    scratch.body.extend_from_slice(payload);
    scratch
        .body
        .extend_from_slice(&crc32_ieee(payload).to_be_bytes());
    bytes_to_bits_into(&scratch.body, out);
}

/// Decodes payload slot statistics into the payload bytes, verifying the
/// CRC-32.
///
/// # Errors
///
/// * [`PhyError::TruncatedInput`] — fewer slots than the length implies.
/// * [`PhyError::CrcMismatch`] — the frame check sequence failed.
pub fn decode_payload(
    stats: &[Complex],
    payload_len: usize,
    config: &Gen2Config,
) -> Result<Vec<u8>, PhyError> {
    let needed = payload_slot_count(payload_len, config);
    if stats.len() < needed {
        return Err(PhyError::TruncatedInput);
    }
    let (hard, soft) = slots_to_soft(&stats[..needed], config.modulation, config.pulses_per_bit);
    let raw_bits = 8 * (payload_len + 4);
    let mut bits = match config.fec {
        Some(code) => {
            let coded_len = 2 * (raw_bits + code.constraint_length as usize - 1);
            code.decode_soft(&soft[..coded_len])
        }
        None => hard,
    };
    bits.truncate(raw_bits);
    let mut body = bits_to_bytes(&bits);
    let mut scrambler = Scrambler::default();
    scrambler.apply_bytes(&mut body);
    let payload = body[..payload_len].to_vec();
    let fcs = u32::from_be_bytes(
        body[payload_len..payload_len + 4]
            .try_into()
            .expect("FCS slice is exactly 4 bytes"),
    );
    if crc32_ieee(&payload) != fcs {
        return Err(PhyError::CrcMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fec::ConvCode;

    fn cfg() -> Gen2Config {
        Gen2Config::nominal_100mbps()
    }

    fn to_stats(slots: &[f64]) -> Vec<Complex> {
        slots.iter().map(|&a| Complex::new(a, 0.0)).collect()
    }

    #[test]
    fn header_byte_round_trip() {
        for modulation in Modulation::all() {
            for fec in [false, true] {
                let h = Header {
                    payload_len: 1234,
                    modulation,
                    fec,
                };
                let parsed = Header::from_bytes(&h.to_bytes()).unwrap();
                assert_eq!(parsed, h);
            }
        }
    }

    #[test]
    fn corrupted_header_rejected() {
        let h = Header {
            payload_len: 100,
            modulation: Modulation::Bpsk,
            fec: false,
        };
        let mut b = h.to_bytes();
        b[1] ^= 0x10;
        assert_eq!(Header::from_bytes(&b), Err(PhyError::HeaderInvalid));
    }

    #[test]
    fn frame_structure_lengths() {
        let config = cfg();
        let payload = vec![0x42u8; 100];
        let frame = build_frame(&payload, &config).unwrap();
        assert_eq!(frame.preamble.len(), 127 * 4);
        assert_eq!(frame.sfd.len(), 13);
        assert_eq!(frame.header.len(), header_slot_count(&config));
        assert_eq!(
            frame.payload.len(),
            payload_slot_count(payload.len(), &config)
        );
        assert_eq!(frame.header_start(), 127 * 4 + 13);
        assert_eq!(
            frame.concat().len(),
            frame.payload_start() + frame.payload.len()
        );
    }

    #[test]
    fn clean_round_trip_uncoded_bpsk() {
        let config = cfg();
        let payload: Vec<u8> = (0..=200).map(|i| (i * 7) as u8).collect();
        let frame = build_frame(&payload, &config).unwrap();
        let header = decode_header(&to_stats(&frame.header), &config).unwrap();
        assert_eq!(header.payload_len, payload.len());
        let decoded = decode_payload(&to_stats(&frame.payload), payload.len(), &config).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn clean_round_trip_all_modulations() {
        for modulation in Modulation::all() {
            let mut config = cfg();
            config.modulation = modulation;
            let payload = b"pulsed ultra-wideband".to_vec();
            let frame = build_frame(&payload, &config).unwrap();
            let decoded =
                decode_payload(&to_stats(&frame.payload), payload.len(), &config).unwrap();
            assert_eq!(decoded, payload, "{modulation}");
        }
    }

    #[test]
    fn clean_round_trip_with_fec_and_spreading() {
        let mut config = cfg();
        config.fec = Some(ConvCode::k3());
        config.pulses_per_bit = 3;
        let payload = vec![0xA5u8; 64];
        let frame = build_frame(&payload, &config).unwrap();
        let decoded = decode_payload(&to_stats(&frame.payload), payload.len(), &config).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn fec_heals_slot_errors() {
        let mut config = cfg();
        config.fec = Some(ConvCode::k7());
        let payload = vec![0x3Cu8; 32];
        let frame = build_frame(&payload, &config).unwrap();
        let mut stats = to_stats(&frame.payload);
        // Flip several well-separated slots.
        for idx in [5, 50, 100, 200, 300] {
            stats[idx] = -stats[idx];
        }
        let decoded = decode_payload(&stats, payload.len(), &config).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn crc_catches_uncoded_errors() {
        let config = cfg();
        let payload = vec![0u8; 16];
        let frame = build_frame(&payload, &config).unwrap();
        let mut stats = to_stats(&frame.payload);
        stats[10] = -stats[10];
        assert_eq!(
            decode_payload(&stats, payload.len(), &config),
            Err(PhyError::CrcMismatch)
        );
    }

    #[test]
    fn truncated_input_detected() {
        let config = cfg();
        let payload = vec![1u8; 50];
        let frame = build_frame(&payload, &config).unwrap();
        let stats = to_stats(&frame.payload[..10]);
        assert_eq!(
            decode_payload(&stats, payload.len(), &config),
            Err(PhyError::TruncatedInput)
        );
        assert_eq!(
            decode_header(&to_stats(&[1.0; 3]), &config),
            Err(PhyError::TruncatedInput)
        );
    }

    #[test]
    fn oversized_payload_rejected() {
        let config = cfg();
        let payload = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(
            build_frame(&payload, &config),
            Err(PhyError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn spreading_gain_combines() {
        // With ppb=4, a single corrupted repetition must not flip the bit.
        let mut config = cfg();
        config.pulses_per_bit = 4;
        let payload = vec![0xF0u8; 8];
        let frame = build_frame(&payload, &config).unwrap();
        let mut stats = to_stats(&frame.payload);
        // Corrupt every 4th slot (one repetition of each bit).
        for i in (0..stats.len()).step_by(4) {
            stats[i] = -stats[i];
        }
        let decoded = decode_payload(&stats, payload.len(), &config).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn payload_bits_path_matches_reference() {
        let config = cfg();
        let payload = b"raw ber measurement path".to_vec();
        let frame = build_frame(&payload, &config).unwrap();
        let bits = decode_payload_bits(&to_stats(&frame.payload), payload.len(), &config).unwrap();
        assert_eq!(bits, reference_payload_bits(&payload));
        // A flipped slot produces exactly one bit error (uncoded BPSK).
        let mut stats = to_stats(&frame.payload);
        stats[7] = -stats[7];
        let noisy_bits =
            decode_payload_bits(&stats, payload.len(), &config).unwrap();
        let diff = noisy_bits
            .iter()
            .zip(reference_payload_bits(&payload))
            .filter(|(a, b)| **a != *b)
            .count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn empty_payload() {
        let config = cfg();
        let frame = build_frame(&[], &config).unwrap();
        let decoded = decode_payload(&to_stats(&frame.payload), 0, &config).unwrap();
        assert!(decoded.is_empty());
    }
}
