//! # uwb-phy — the pulsed-UWB PHY (the paper's primary contribution)
//!
//! Reproduction of the transceiver architecture of *Blázquez et al., "Direct
//! Conversion Pulsed UWB Transceiver Architecture", DATE 2005* — the
//! second-generation 3.1–10.6 GHz system of the paper's Fig. 3, built from
//! the following blocks:
//!
//! | Paper block | Module |
//! |---|---|
//! | 500 MHz pulses | [`pulse`] |
//! | 14-channel band plan | [`bandplan`] |
//! | "Pulses per bit" / modulation | [`modulation`], [`config`] |
//! | packet framing + preamble | [`packet`], [`pn`], [`scrambler`], [`crc`] |
//! | transmitter | [`tx`] |
//! | parallelized correlators | [`correlator`] |
//! | coarse acquisition | [`acquisition`] |
//! | PLL/DLL fine tracking | [`tracking`] |
//! | 4-bit channel estimation | [`chanest`] |
//! | programmable RAKE | [`rake`] |
//! | Viterbi demodulator (FEC + MLSE) | [`fec`], [`mlse`] (LMS baseline in [`lms`]) |
//! | spectral monitoring → notch | [`spectral`] (filter in `uwb-rf`) |
//! | power/QoS/rate adaptation | [`adapt`], [`power`] |
//! | "precise locationing" (abstract) | [`ranging`] |
//! | full digital back end | [`receiver`] |
//!
//! # Quickstart: a 100 Mbps packet over the air
//!
//! ```
//! use uwb_phy::{Gen2Config, Gen2Transmitter, Gen2Receiver};
//!
//! # fn main() -> Result<(), uwb_phy::PhyError> {
//! let cfg = Gen2Config::nominal_100mbps();
//! let tx = Gen2Transmitter::new(cfg.clone())?;
//! let rx = Gen2Receiver::new(cfg)?;
//!
//! let burst = tx.transmit_packet(b"hello uwb")?;
//! let packet = rx.receive_packet(&burst.samples)?;
//! assert_eq!(packet.payload, b"hello uwb");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod acquisition;
pub mod adapt;
pub mod bandplan;
pub mod chanest;
pub mod config;
pub mod correlator;
pub mod crc;
pub mod error;
pub mod fec;
pub mod lms;
pub mod mlse;
pub mod modulation;
pub mod packet;
pub mod pn;
pub mod power;
pub mod pulse;
pub mod rake;
pub mod ranging;
pub mod receiver;
pub mod scrambler;
pub mod spectral;
pub mod stream_rx;
pub mod tracking;
pub mod tx;

pub use acquisition::{AcquisitionConfig, AcquisitionResult, CoarseAcquisition};
pub use adapt::{ChannelConditions, LinkAdapter, OperatingPoint};
pub use bandplan::Channel;
pub use chanest::{estimate_cir, ChannelEstimate};
pub use config::Gen2Config;
pub use correlator::{CorrelatorBank, CorrelatorStats};
pub use error::PhyError;
pub use fec::ConvCode;
pub use lms::LmsEqualizer;
pub use mlse::MlseEqualizer;
pub use modulation::Modulation;
pub use packet::{FrameScratch, FrameSlots, Header};
pub use power::{PowerBreakdown, PowerClass, PowerModel};
pub use pulse::PulseShape;
pub use rake::RakeReceiver;
pub use ranging::{solve_two_way, RangingResult, ToaEstimate, ToaEstimator};
pub use receiver::{Gen2Receiver, ReceivedPacket, RxState};
pub use spectral::{GoertzelMonitor, InterfererReport, SpectralMonitor};
pub use stream_rx::{StreamPhase, StreamRx};
pub use tracking::{Dll, Pll};
pub use tx::{Burst, Gen2Transmitter};
