//! The 14-channel band plan of the gen2 transceiver.
//!
//! Paper §3: "The signal is comprised of a sequence of 500 MHz bandwidth
//! pulses that are upconverted to one of 14 channels (sub-bands) in the
//! 3.1-10.6 GHz band." The concrete grid (first center 3432 MHz, 528 MHz
//! spacing) is the one the authors' group used in their silicon; 14 channels
//! at 528 MHz spacing span 3168–10560 MHz, filling the FCC allocation.

use crate::error::PhyError;
use uwb_sim::time::Hertz;

/// Number of channels in the band plan.
pub const CHANNEL_COUNT: usize = 14;

/// Center frequency of channel 0.
pub const FIRST_CENTER_MHZ: f64 = 3432.0;

/// Channel-to-channel spacing.
pub const CHANNEL_SPACING_MHZ: f64 = 528.0;

/// Occupied (pulse) bandwidth per channel.
pub const CHANNEL_BANDWIDTH_MHZ: f64 = 500.0;

/// One of the 14 UWB sub-band channels.
///
/// ```
/// use uwb_phy::bandplan::Channel;
///
/// let ch = Channel::new(3)?;
/// assert_eq!(ch.center().as_mhz(), 3432.0 + 3.0 * 528.0);
/// # Ok::<(), uwb_phy::PhyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel(usize);

impl Channel {
    /// Creates a channel from its index `0..14`.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidChannel`] if `index >= 14`.
    pub fn new(index: usize) -> Result<Channel, PhyError> {
        if index >= CHANNEL_COUNT {
            return Err(PhyError::InvalidChannel(index));
        }
        Ok(Channel(index))
    }

    /// The channel whose center is nearest to 5 GHz — the carrier of the
    /// paper's Fig. 4 example pulse.
    pub fn near_5ghz() -> Channel {
        Channel::nearest(Hertz::from_ghz(5.0))
    }

    /// The channel whose center frequency is closest to `freq`.
    pub fn nearest(freq: Hertz) -> Channel {
        let idx = ((freq.as_hz() / 1e6 - FIRST_CENTER_MHZ) / CHANNEL_SPACING_MHZ).round();
        Channel(idx.clamp(0.0, (CHANNEL_COUNT - 1) as f64) as usize)
    }

    /// The channel index, `0..14`.
    pub fn index(self) -> usize {
        self.0
    }

    /// Center frequency.
    pub fn center(self) -> Hertz {
        Hertz::from_mhz(FIRST_CENTER_MHZ + self.0 as f64 * CHANNEL_SPACING_MHZ)
    }

    /// Lower edge of the occupied bandwidth.
    pub fn low_edge(self) -> Hertz {
        Hertz::new(self.center().as_hz() - CHANNEL_BANDWIDTH_MHZ * 1e6 / 2.0)
    }

    /// Upper edge of the occupied bandwidth.
    pub fn high_edge(self) -> Hertz {
        Hertz::new(self.center().as_hz() + CHANNEL_BANDWIDTH_MHZ * 1e6 / 2.0)
    }

    /// `true` if the occupied bandwidth lies inside the FCC 3.1–10.6 GHz
    /// allocation.
    pub fn within_fcc_band(self) -> bool {
        // The edge channels' 500 MHz occupied BW fits inside the 528 MHz
        // grid slot, which itself spans 3168-10560 MHz; allow the occupied
        // bandwidth to be judged against the FCC edges.
        self.low_edge().as_hz() >= uwb_sim::pathloss::FCC_BAND_LOW.as_hz() - 100e6
            && self.high_edge().as_hz() <= uwb_sim::pathloss::FCC_BAND_HIGH.as_hz() + 100e6
    }

    /// Iterator over all 14 channels.
    pub fn all() -> impl Iterator<Item = Channel> {
        (0..CHANNEL_COUNT).map(Channel)
    }

    /// Spectral overlap between the occupied bands of `self` and `other`,
    /// in Hz. Zero whenever the occupied bands are disjoint (all distinct
    /// channel pairs on this grid — the 528 MHz spacing leaves a 28 MHz
    /// guard between 500 MHz occupied bands).
    pub fn overlap_hz(self, other: Channel) -> f64 {
        let lo = self.low_edge().as_hz().max(other.low_edge().as_hz());
        let hi = self.high_edge().as_hz().min(other.high_edge().as_hz());
        (hi - lo).max(0.0)
    }

    /// Spectral gap between the occupied bands of `self` and `other`, in Hz.
    /// Zero for the same channel; 28 MHz for adjacent channels on this grid.
    pub fn gap_hz(self, other: Channel) -> f64 {
        let lo = self.low_edge().as_hz().max(other.low_edge().as_hz());
        let hi = self.high_edge().as_hz().min(other.high_edge().as_hz());
        (lo - hi).max(0.0)
    }

    /// Fraction of this channel's occupied bandwidth that `other`'s occupied
    /// band covers: 1.0 for the same channel, 0.0 for any disjoint pair.
    pub fn overlap_fraction(self, other: Channel) -> f64 {
        self.overlap_hz(other) / (CHANNEL_BANDWIDTH_MHZ * 1e6)
    }

    /// Spectral-overlap attenuation in dB when a transmitter on `other`
    /// leaks into a receiver tuned to `self`, considering occupied-band
    /// overlap only (front-end selectivity is modeled separately by
    /// `uwb_rf::ChannelSelectivity`).
    ///
    /// Properties (pinned by proptests):
    /// * symmetric: `a.overlap_attenuation_db(b) == b.overlap_attenuation_db(a)`,
    /// * co-channel is 0 dB,
    /// * always ≤ 0 dB; disjoint occupied bands give `-inf`.
    pub fn overlap_attenuation_db(self, other: Channel) -> f64 {
        let frac = self.overlap_fraction(other);
        if frac <= 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * frac.log10()
        }
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{} ({:.3} GHz)", self.0, self.center().as_ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_channels() {
        assert_eq!(Channel::all().count(), 14);
        assert!(Channel::new(13).is_ok());
        assert_eq!(Channel::new(14), Err(PhyError::InvalidChannel(14)));
    }

    #[test]
    fn centers_on_528_grid() {
        let ch0 = Channel::new(0).unwrap();
        assert_eq!(ch0.center().as_mhz(), 3432.0);
        let ch13 = Channel::new(13).unwrap();
        assert_eq!(ch13.center().as_mhz(), 3432.0 + 13.0 * 528.0);
        // Top channel center = 10296 MHz, inside the band.
        assert!(ch13.center().as_ghz() < 10.6);
    }

    #[test]
    fn grid_spans_fcc_band() {
        // All channel slots (±264 MHz around centers) fill 3168-10560 MHz.
        let lo = Channel::new(0).unwrap().center().as_mhz() - CHANNEL_SPACING_MHZ / 2.0;
        let hi = Channel::new(13).unwrap().center().as_mhz() + CHANNEL_SPACING_MHZ / 2.0;
        assert_eq!(lo, 3168.0);
        assert_eq!(hi, 10560.0);
        for ch in Channel::all() {
            assert!(ch.within_fcc_band(), "{ch}");
        }
    }

    #[test]
    fn edges_are_500mhz_apart() {
        for ch in Channel::all() {
            let bw = ch.high_edge().as_hz() - ch.low_edge().as_hz();
            assert!((bw - 500e6).abs() < 1.0);
        }
    }

    #[test]
    fn channels_do_not_overlap() {
        for i in 0..CHANNEL_COUNT - 1 {
            let a = Channel::new(i).unwrap();
            let b = Channel::new(i + 1).unwrap();
            assert!(a.high_edge().as_hz() < b.low_edge().as_hz());
        }
    }

    #[test]
    fn nearest_channel_lookup() {
        assert_eq!(Channel::nearest(Hertz::from_mhz(3432.0)).index(), 0);
        assert_eq!(Channel::nearest(Hertz::from_mhz(3700.0)).index(), 1);
        assert_eq!(Channel::nearest(Hertz::from_ghz(20.0)).index(), 13);
        assert_eq!(Channel::nearest(Hertz::from_ghz(1.0)).index(), 0);
    }

    #[test]
    fn fig4_carrier_channel() {
        // Fig. 4's 5 GHz carrier sits nearest channel 3 (5.016 GHz).
        let ch = Channel::near_5ghz();
        assert_eq!(ch.index(), 3);
        assert!((ch.center().as_ghz() - 5.016).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        let ch = Channel::new(3).unwrap();
        let s = ch.to_string();
        assert!(s.contains("ch3"), "{s}");
        assert!(s.contains("5.016"), "{s}");
    }

    #[test]
    fn ordering() {
        assert!(Channel::new(2).unwrap() < Channel::new(9).unwrap());
    }

    #[test]
    fn overlap_same_channel_is_full() {
        for ch in Channel::all() {
            assert!((ch.overlap_hz(ch) - 500e6).abs() < 1.0);
            assert_eq!(ch.overlap_fraction(ch), 1.0);
            assert_eq!(ch.overlap_attenuation_db(ch), 0.0);
            assert_eq!(ch.gap_hz(ch), 0.0);
        }
    }

    #[test]
    fn overlap_distinct_channels_is_disjoint() {
        // 528 MHz spacing, 500 MHz occupied BW: adjacent channels leave a
        // 28 MHz guard, so occupied bands never overlap.
        let a = Channel::new(4).unwrap();
        let b = Channel::new(5).unwrap();
        assert_eq!(a.overlap_hz(b), 0.0);
        assert!((a.gap_hz(b) - 28e6).abs() < 1.0);
        assert_eq!(a.overlap_attenuation_db(b), f64::NEG_INFINITY);
        // Two apart: 528 + 28 MHz gap.
        let c = Channel::new(6).unwrap();
        assert!((a.gap_hz(c) - 556e6).abs() < 1.0);
    }

    #[test]
    fn overlap_attenuation_is_symmetric() {
        for a in Channel::all() {
            for b in Channel::all() {
                let ab = a.overlap_attenuation_db(b);
                let ba = b.overlap_attenuation_db(a);
                assert!(ab == ba || (ab.is_infinite() && ba.is_infinite()));
                assert!(ab <= 0.0);
            }
        }
    }
}
