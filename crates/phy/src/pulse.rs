//! Pulse shapes.
//!
//! The gen2 signal is "a sequence of 500 MHz bandwidth pulses" (paper §3,
//! Fig. 4 shows one on a 5 GHz carrier); the gen1 chip radiates carrierless
//! baseband monocycles. Shapes here are generated at an arbitrary sample
//! rate and normalized to unit energy.

use uwb_dsp::Complex;
use uwb_sim::time::{Hertz, SampleRate};

/// Pulse shape selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PulseShape {
    /// Gaussian envelope with the given −10 dB bandwidth. The baseband pulse
    /// of the gen2 transmitter.
    Gaussian {
        /// Target −10 dB bandwidth.
        bandwidth: Hertz,
    },
    /// First derivative of a Gaussian ("monocycle") with the given nominal
    /// center frequency — the classic carrierless impulse-radio shape used
    /// by the gen1 chip.
    Monocycle {
        /// Peak-response frequency of the monocycle.
        center: Hertz,
    },
    /// Root-raised-cosine with the given symbol (chip) rate and roll-off —
    /// the shape a discrete prototype AWG would typically emit.
    RootRaisedCosine {
        /// Chip rate (the pulse's two-sided bandwidth is
        /// `(1 + roll_off) * chip_rate`).
        chip_rate: Hertz,
        /// Excess-bandwidth roll-off factor in `[0, 1]`.
        roll_off: f64,
    },
}

impl PulseShape {
    /// The paper's 500 MHz Gaussian pulse.
    pub fn gen2_default() -> Self {
        PulseShape::Gaussian {
            bandwidth: Hertz::from_mhz(500.0),
        }
    }

    /// Generates the unit-energy pulse samples (real) at `fs`.
    ///
    /// The returned pulse is centered in its buffer and long enough to hold
    /// > 99.9 % of the shape's energy.
    ///
    /// # Panics
    ///
    /// Panics if the shape parameters are non-positive, roll-off is outside
    /// `[0, 1]`, or `fs` violates Nyquist for the shape's bandwidth.
    pub fn generate(&self, fs: SampleRate) -> Vec<f64> {
        let mut p = match *self {
            PulseShape::Gaussian { bandwidth } => gaussian_pulse(bandwidth, fs),
            PulseShape::Monocycle { center } => monocycle_pulse(center, fs),
            PulseShape::RootRaisedCosine {
                chip_rate,
                roll_off,
            } => rrc_pulse(chip_rate, roll_off, fs),
        };
        normalize_energy(&mut p);
        p
    }

    /// The pulse as a complex baseband template.
    pub fn generate_complex(&self, fs: SampleRate) -> Vec<Complex> {
        self.generate(fs)
            .iter()
            .map(|&x| Complex::new(x, 0.0))
            .collect()
    }
}

fn gaussian_pulse(bandwidth: Hertz, fs: SampleRate) -> Vec<f64> {
    let bw = bandwidth.as_hz();
    assert!(bw > 0.0, "bandwidth must be positive");
    assert!(
        bw / 2.0 < fs.as_hz() / 2.0,
        "sample rate too low for the pulse bandwidth"
    );
    // Gaussian g(t) = exp(-t²/(2σ²)) has |G(f)|² ∝ exp(-4π²σ²f²).
    // −10 dB (power) at f = bw/2: 4π²σ²(bw/2)² = ln 10 ⇒
    // σ = sqrt(ln 10) / (π·bw).
    let sigma_t = 10f64.ln().sqrt() / (std::f64::consts::PI * bw);
    let dt = 1.0 / fs.as_hz();
    let half = (4.5 * sigma_t / dt).ceil() as isize;
    (-half..=half)
        .map(|k| {
            let t = k as f64 * dt;
            (-t * t / (2.0 * sigma_t * sigma_t)).exp()
        })
        .collect()
}

fn monocycle_pulse(center: Hertz, fs: SampleRate) -> Vec<f64> {
    let fc = center.as_hz();
    assert!(fc > 0.0, "center frequency must be positive");
    assert!(fc < fs.as_hz() / 2.0, "sample rate too low for the monocycle");
    // First Gaussian derivative: peak spectral response at f_p = 1/(2 pi sigma).
    let sigma = 1.0 / (std::f64::consts::TAU * fc);
    let dt = 1.0 / fs.as_hz();
    let half = (5.0 * sigma / dt).ceil() as isize;
    (-half..=half)
        .map(|k| {
            let t = k as f64 * dt;
            -t / (sigma * sigma) * (-t * t / (2.0 * sigma * sigma)).exp()
        })
        .collect()
}

fn rrc_pulse(chip_rate: Hertz, roll_off: f64, fs: SampleRate) -> Vec<f64> {
    let rc = chip_rate.as_hz();
    assert!(rc > 0.0, "chip rate must be positive");
    assert!((0.0..=1.0).contains(&roll_off), "roll-off must be in [0, 1]");
    assert!(
        rc * (1.0 + roll_off) / 2.0 < fs.as_hz() / 2.0,
        "sample rate too low for the RRC bandwidth"
    );
    let tc = 1.0 / rc; // chip period
    let dt = 1.0 / fs.as_hz();
    let span_chips = 8.0;
    let half = (span_chips * tc / dt).ceil() as isize;
    let beta = roll_off;
    (-half..=half)
        .map(|k| {
            let t = k as f64 * dt / tc; // in chip periods
            rrc_sample(t, beta)
        })
        .collect()
}

/// One sample of the unit-rate RRC impulse response (t in symbol periods).
fn rrc_sample(t: f64, beta: f64) -> f64 {
    let pi = std::f64::consts::PI;
    if t.abs() < 1e-9 {
        return 1.0 - beta + 4.0 * beta / pi;
    }
    if beta > 0.0 && (t.abs() - 1.0 / (4.0 * beta)).abs() < 1e-9 {
        // Singular point.
        return beta / std::f64::consts::SQRT_2
            * ((1.0 + 2.0 / pi) * (pi / (4.0 * beta)).sin()
                + (1.0 - 2.0 / pi) * (pi / (4.0 * beta)).cos());
    }
    let num = (pi * t * (1.0 - beta)).sin() + 4.0 * beta * t * (pi * t * (1.0 + beta)).cos();
    let den = pi * t * (1.0 - (4.0 * beta * t) * (4.0 * beta * t));
    num / den
}

/// Scales a pulse to unit energy in place.
///
/// # Panics
///
/// Panics if the pulse has zero energy.
pub fn normalize_energy(pulse: &mut [f64]) {
    let e: f64 = pulse.iter().map(|x| x * x).sum();
    assert!(e > 0.0, "cannot normalize a zero pulse");
    let k = 1.0 / e.sqrt();
    for x in pulse.iter_mut() {
        *x *= k;
    }
}

/// Measures the −`db` two-sided bandwidth of a pulse at sample rate `fs`
/// using a zero-padded periodogram.
pub fn measure_bandwidth(pulse: &[f64], fs: SampleRate, db: f64) -> Hertz {
    // Zero-pad heavily for frequency resolution.
    let mut padded = pulse.to_vec();
    padded.resize(pulse.len().max(1) * 16, 0.0);
    let psd = uwb_dsp::psd::periodogram_real(&padded, fs.as_hz(), uwb_dsp::Window::Rectangular);
    Hertz::new(psd.bandwidth_below_peak(db))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SampleRate {
        SampleRate::from_gsps(4.0)
    }

    #[test]
    fn gaussian_bandwidth_is_500mhz() {
        let p = PulseShape::gen2_default().generate(fs());
        let bw = measure_bandwidth(&p, fs(), 10.0);
        let err = (bw.as_mhz() - 500.0).abs() / 500.0;
        assert!(err < 0.15, "-10 dB bandwidth {} MHz", bw.as_mhz());
    }

    #[test]
    fn pulses_are_unit_energy() {
        for shape in [
            PulseShape::gen2_default(),
            PulseShape::Monocycle {
                center: Hertz::from_mhz(800.0),
            },
            PulseShape::RootRaisedCosine {
                chip_rate: Hertz::from_mhz(500.0),
                roll_off: 0.3,
            },
        ] {
            let p = shape.generate(fs());
            let e: f64 = p.iter().map(|x| x * x).sum();
            assert!((e - 1.0).abs() < 1e-9, "{shape:?}: energy {e}");
        }
    }

    #[test]
    fn gaussian_duration_matches_bandwidth() {
        // A 500 MHz pulse should have ~2 ns main lobe (the "few ns" burst of
        // Fig. 4 at 580 ps/div).
        let p = PulseShape::gen2_default().generate(fs());
        let dt_ns = 1e9 / fs().as_hz();
        let peak = uwb_dsp::math::max_abs(&p);
        let above: usize = p.iter().filter(|x| x.abs() > peak * 0.1).count();
        let dur_ns = above as f64 * dt_ns;
        assert!(dur_ns > 1.0 && dur_ns < 6.0, "duration {dur_ns} ns");
    }

    #[test]
    fn monocycle_is_odd_and_zero_mean() {
        let p = PulseShape::Monocycle {
            center: Hertz::from_mhz(500.0),
        }
        .generate(fs());
        let sum: f64 = p.iter().sum();
        assert!(sum.abs() < 1e-9, "monocycle must have no DC: {sum}");
        // Odd symmetry.
        let n = p.len();
        for k in 0..n / 2 {
            assert!((p[k] + p[n - 1 - k]).abs() < 1e-9);
        }
    }

    #[test]
    fn monocycle_spectral_peak_near_center() {
        let fc = Hertz::from_mhz(600.0);
        let p = PulseShape::Monocycle { center: fc }.generate(fs());
        let mut padded = p.clone();
        padded.resize(p.len() * 16, 0.0);
        let psd =
            uwb_dsp::psd::periodogram_real(&padded, fs().as_hz(), uwb_dsp::Window::Rectangular);
        let peak = psd.peak_frequency().abs();
        assert!(
            (peak - fc.as_hz()).abs() / fc.as_hz() < 0.15,
            "peak at {peak}"
        );
    }

    #[test]
    fn rrc_nyquist_zero_crossings() {
        // The full raised cosine (RRC convolved with itself) has zeros at
        // integer chip offsets; check the RRC autocorrelation instead.
        let rate = Hertz::from_mhz(500.0);
        let p = PulseShape::RootRaisedCosine {
            chip_rate: rate,
            roll_off: 0.25,
        }
        .generate(fs());
        let sps = (fs().as_hz() / rate.as_hz()).round() as usize;
        // Autocorrelation at lag = k * sps must be ~0 for k != 0.
        let auto = |lag: usize| -> f64 { (0..p.len() - lag).map(|i| p[i] * p[i + lag]).sum() };
        let r0 = auto(0);
        for k in 1..=3 {
            let r = auto(k * sps);
            assert!(r.abs() / r0 < 0.02, "ISI at lag {k}: {}", r / r0);
        }
    }

    #[test]
    fn pulse_is_centered() {
        let p = PulseShape::gen2_default().generate(fs());
        let peak_idx = uwb_dsp::math::argmax(&p).unwrap();
        assert_eq!(peak_idx, p.len() / 2);
        assert_eq!(p.len() % 2, 1);
    }

    #[test]
    fn complex_variant_matches_real() {
        let shape = PulseShape::gen2_default();
        let r = shape.generate(fs());
        let c = shape.generate_complex(fs());
        assert_eq!(r.len(), c.len());
        for (a, b) in r.iter().zip(&c) {
            assert_eq!(*a, b.re);
            assert_eq!(b.im, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "sample rate too low")]
    fn nyquist_violation_panics() {
        PulseShape::Gaussian {
            bandwidth: Hertz::from_ghz(3.0),
        }
        .generate(SampleRate::from_gsps(1.0));
    }

    #[test]
    #[should_panic(expected = "zero pulse")]
    fn normalize_zero_panics() {
        let mut z = vec![0.0; 4];
        normalize_energy(&mut z);
    }
}
