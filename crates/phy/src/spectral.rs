//! Spectral monitoring: interferer detection and frequency estimation.
//!
//! Paper §3: "The digital back end detects the presence of an interferer and
//! estimates its frequency that may be used in the front end notch filter."
//! The monitor runs a Welch PSD over a received block, compares the peak
//! bin against the median floor (a CFAR-style test that is robust to the
//! wideband signal itself), and refines the peak frequency by parabolic
//! interpolation to a fraction of a bin.

use uwb_dsp::psd::welch;
use uwb_dsp::{Complex, Window};
use uwb_sim::time::Hertz;

/// Result of one spectral-monitoring pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfererReport {
    /// `true` if a narrowband interferer was detected.
    pub detected: bool,
    /// Estimated interferer frequency (baseband offset).
    pub frequency: Hertz,
    /// Peak-to-median power ratio in dB (the detection statistic).
    pub peak_to_floor_db: f64,
    /// Estimated interferer power relative to the total block power, in dB.
    pub relative_power_db: f64,
}

/// The spectral monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralMonitor {
    /// FFT segment length for the Welch estimate.
    pub segment_len: usize,
    /// Detection threshold on peak/median, in dB. A UWB pulse stream is
    /// spectrally flat, so ~12 dB keeps false alarms negligible.
    pub threshold_db: f64,
}

impl SpectralMonitor {
    /// Default monitor: 1024-bin segments, 12 dB threshold.
    pub fn new() -> Self {
        SpectralMonitor {
            segment_len: 1024,
            threshold_db: 12.0,
        }
    }

    /// Analyzes a received complex-baseband block at `fs_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `fs_hz <= 0`.
    pub fn analyze(&self, samples: &[Complex], fs_hz: f64) -> InterfererReport {
        let psd = welch(samples, fs_hz, self.segment_len, Window::Hann);
        let (freqs, vals) = psd.sorted();
        let n = vals.len();

        // Median floor.
        let mut sorted_vals = vals.clone();
        sorted_vals.sort_by(f64::total_cmp);
        let median = sorted_vals[n / 2].max(1e-300);

        // Peak and parabolic refinement.
        let peak_idx = uwb_dsp::math::argmax(&vals).unwrap_or(0);
        let peak = vals[peak_idx];
        let peak_to_floor_db = 10.0 * (peak / median).log10();

        let df = if n > 1 { freqs[1] - freqs[0] } else { 0.0 };
        let frac = if peak_idx > 0 && peak_idx + 1 < n {
            // Parabolic interpolation on log power.
            let (a, b, c) = (
                vals[peak_idx - 1].max(1e-300).ln(),
                vals[peak_idx].max(1e-300).ln(),
                vals[peak_idx + 1].max(1e-300).ln(),
            );
            let denom = a - 2.0 * b + c;
            if denom.abs() > 1e-12 {
                (0.5 * (a - c) / denom).clamp(-0.5, 0.5)
            } else {
                0.0
            }
        } else {
            0.0
        };
        let freq = freqs[peak_idx] + frac * df;

        // Interferer power ≈ sum of bins within ±2 of the peak.
        let lo = peak_idx.saturating_sub(2);
        let hi = (peak_idx + 3).min(n);
        let intf_power: f64 = vals[lo..hi].iter().sum();
        let total: f64 = vals.iter().sum();
        let relative_power_db = 10.0 * (intf_power / total.max(1e-300)).log10();

        InterfererReport {
            detected: peak_to_floor_db >= self.threshold_db,
            frequency: Hertz::new(freq),
            peak_to_floor_db,
            relative_power_db,
        }
    }
}

impl Default for SpectralMonitor {
    fn default() -> Self {
        SpectralMonitor::new()
    }
}

/// A low-power alternative monitor: instead of a full Welch FFT sweep, a
/// Goertzel bank watches a fixed list of *suspect* frequencies (the known
/// narrowband services near the operating channel — e.g. 802.11a at
/// 5.15–5.35 GHz lands in-band for channels 3–4). `O(N)` per suspect, two
/// real multiplies per sample — a fraction of the FFT's energy.
#[derive(Debug, Clone, PartialEq)]
pub struct GoertzelMonitor {
    /// Baseband-equivalent suspect frequencies (Hz offsets from the channel
    /// center).
    pub suspects_hz: Vec<f64>,
    /// Detection threshold on the interferer-to-background power ratio
    /// (suspect-bin power over everything else), in dB.
    pub threshold_db: f64,
}

impl GoertzelMonitor {
    /// A monitor over the given suspect list: detect when a suspect carries
    /// at least as much power as the rest of the block combined (0 dB).
    ///
    /// # Panics
    ///
    /// Panics if `suspects_hz` is empty.
    pub fn new(suspects_hz: Vec<f64>) -> Self {
        assert!(!suspects_hz.is_empty(), "need at least one suspect");
        GoertzelMonitor {
            suspects_hz,
            threshold_db: 0.0,
        }
    }

    /// Analyzes a block; reports the strongest suspect.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `fs_hz <= 0`.
    pub fn analyze(&self, samples: &[Complex], fs_hz: f64) -> InterfererReport {
        assert!(!samples.is_empty(), "cannot analyze an empty block");
        assert!(fs_hz > 0.0, "sample rate must be positive");
        let total_power = uwb_dsp::complex::mean_power(samples).max(1e-300);
        let scan = uwb_dsp::goertzel::scan_frequencies(samples, fs_hz, &self.suspects_hz);
        let (freq, power) = scan
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty suspect list");
        // Interferer-to-background: bin power vs everything else in the block.
        let background = (total_power - power).max(total_power * 1e-6);
        let ratio_db = 10.0 * (power / background).log10();
        InterfererReport {
            detected: ratio_db >= self.threshold_db,
            frequency: Hertz::new(freq),
            peak_to_floor_db: ratio_db,
            relative_power_db: 10.0 * (power / total_power).log10(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::awgn::complex_noise;
    use uwb_sim::{Interferer, Rand};

    const FS: f64 = 1e9;

    #[test]
    fn detects_cw_in_noise() {
        let mut rng = Rand::new(1);
        let noise = complex_noise(32_768, 1.0, &mut rng);
        let intf = Interferer::cw(137e6, 10.0);
        let sig = intf.add_to(&noise, FS, &mut rng);
        let report = SpectralMonitor::new().analyze(&sig, FS);
        assert!(report.detected, "ratio {}", report.peak_to_floor_db);
        assert!(
            (report.frequency.as_hz() - 137e6).abs() < 1e6,
            "estimated {}",
            report.frequency
        );
    }

    #[test]
    fn frequency_estimate_sub_bin() {
        // Frequency deliberately between bins: parabolic interpolation
        // should get within a fraction of a bin.
        let mut rng = Rand::new(2);
        let bin = FS / 1024.0;
        let f0 = 100.0 * bin + 0.37 * bin;
        let noise = complex_noise(65_536, 0.01, &mut rng);
        let intf = Interferer::cw(f0, 5.0);
        let sig = intf.add_to(&noise, FS, &mut rng);
        let report = SpectralMonitor::new().analyze(&sig, FS);
        assert!(report.detected);
        assert!(
            (report.frequency.as_hz() - f0).abs() < 0.3 * bin,
            "error {} Hz (bin {bin})",
            (report.frequency.as_hz() - f0).abs()
        );
    }

    #[test]
    fn negative_frequency_interferer() {
        let mut rng = Rand::new(3);
        let noise = complex_noise(32_768, 0.5, &mut rng);
        let intf = Interferer::cw(-220e6, 20.0);
        let sig = intf.add_to(&noise, FS, &mut rng);
        let report = SpectralMonitor::new().analyze(&sig, FS);
        assert!(report.detected);
        assert!((report.frequency.as_hz() + 220e6).abs() < 1e6);
    }

    #[test]
    fn no_false_alarm_on_noise() {
        let mut rng = Rand::new(4);
        let noise = complex_noise(32_768, 1.0, &mut rng);
        let report = SpectralMonitor::new().analyze(&noise, FS);
        assert!(!report.detected, "ratio {}", report.peak_to_floor_db);
    }

    #[test]
    fn no_false_alarm_on_uwb_pulses() {
        // A pulse stream is wideband; the monitor must not flag it.
        use crate::config::Gen2Config;
        use crate::tx::Gen2Transmitter;
        let tx = Gen2Transmitter::new(Gen2Config::nominal_100mbps()).unwrap();
        let burst = tx.transmit_packet(&[0x5A; 64]).unwrap();
        let report = SpectralMonitor::new().analyze(&burst.samples, FS);
        assert!(
            !report.detected,
            "false alarm on pulses: {} dB",
            report.peak_to_floor_db
        );
    }

    #[test]
    fn detects_interferer_on_top_of_pulses() {
        use crate::config::Gen2Config;
        use crate::tx::Gen2Transmitter;
        let mut rng = Rand::new(5);
        let tx = Gen2Transmitter::new(Gen2Config::nominal_100mbps()).unwrap();
        let burst = tx.transmit_packet(&[0x5A; 200]).unwrap();
        // Interferer 10 dB above the pulse average power.
        let p_sig = uwb_dsp::complex::mean_power(&burst.samples);
        let intf = Interferer::cw(180e6, p_sig * 10.0);
        let sig = intf.add_to(&burst.samples, FS, &mut rng);
        let report = SpectralMonitor::new().analyze(&sig, FS);
        assert!(report.detected);
        assert!((report.frequency.as_hz() - 180e6).abs() < 2e6);
        assert!(report.relative_power_db > -3.0, "{}", report.relative_power_db);
    }

    #[test]
    fn goertzel_monitor_detects_known_suspect() {
        let mut rng = Rand::new(7);
        let noise = complex_noise(16_384, 1.0, &mut rng);
        let suspects = vec![-150e6, -50e6, 50e6, 150e6];
        let monitor = GoertzelMonitor::new(suspects);
        // No interferer: quiet.
        let clean = monitor.analyze(&noise, FS);
        assert!(!clean.detected, "{}", clean.peak_to_floor_db);
        // Interferer on a suspect frequency, 10 dB above the noise.
        let sig = Interferer::cw(150e6, 10.0).add_to(&noise, FS, &mut rng);
        let report = monitor.analyze(&sig, FS);
        assert!(report.detected, "{}", report.peak_to_floor_db);
        assert_eq!(report.frequency.as_hz(), 150e6);
        assert!((report.peak_to_floor_db - 10.0).abs() < 1.5, "{}", report.peak_to_floor_db);
    }

    #[test]
    fn goertzel_monitor_agrees_with_welch() {
        let mut rng = Rand::new(8);
        let noise = complex_noise(16_384, 0.5, &mut rng);
        let sig = Interferer::cw(-50e6, 8.0).add_to(&noise, FS, &mut rng);
        let welch_report = SpectralMonitor::new().analyze(&sig, FS);
        let goertzel_report =
            GoertzelMonitor::new(vec![-150e6, -50e6, 50e6]).analyze(&sig, FS);
        assert!(welch_report.detected && goertzel_report.detected);
        assert!(
            (welch_report.frequency.as_hz() - goertzel_report.frequency.as_hz()).abs() < 1e6
        );
    }

    #[test]
    fn stronger_interferer_higher_statistic() {
        let mut rng = Rand::new(6);
        let noise = complex_noise(16_384, 1.0, &mut rng);
        let weak = Interferer::cw(90e6, 2.0).add_to(&noise, FS, &mut rng);
        let strong = Interferer::cw(90e6, 50.0).add_to(&noise, FS, &mut rng);
        let m = SpectralMonitor::new();
        let rw = m.analyze(&weak, FS);
        let rs = m.analyze(&strong, FS);
        assert!(rs.peak_to_floor_db > rw.peak_to_floor_db);
    }
}
