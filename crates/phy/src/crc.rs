//! CRC generators for header and payload protection.

/// CRC-16/CCITT-FALSE: polynomial `0x1021`, init `0xFFFF`, no reflection.
/// Used for the packet header.
///
/// ```
/// use uwb_phy::crc::crc16_ccitt;
/// // The classic check value for "123456789".
/// assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
/// ```
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected, init/final `0xFFFFFFFF`). Used for the
/// payload frame check sequence.
///
/// ```
/// use uwb_phy::crc::crc32_ieee;
/// assert_eq!(crc32_ieee(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32_ieee(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xEDB8_8320;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// CRC-8 (poly `0x07`, init `0x00`) for the short header rate field.
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            if crc & 0x80 != 0 {
                crc = (crc << 1) ^ 0x07;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_check_value() {
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32_ieee(b"123456789"), 0xCBF43926);
        assert_eq!(crc32_ieee(b""), 0x0000_0000);
    }

    #[test]
    fn crc8_check_value() {
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(b""), 0x00);
    }

    #[test]
    fn single_bit_error_detected() {
        let data = b"ultra wideband pulsed transceiver".to_vec();
        let c = crc32_ieee(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32_ieee(&corrupted), c, "missed error at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn crc16_detects_swaps() {
        let a = crc16_ccitt(b"AB");
        let b = crc16_ccitt(b"BA");
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let d = b"determinism";
        assert_eq!(crc32_ieee(d), crc32_ieee(d));
        assert_eq!(crc16_ccitt(d), crc16_ccitt(d));
        assert_eq!(crc8(d), crc8(d));
    }
}
