//! Pseudo-noise sequences: LFSR m-sequences and Gold codes.
//!
//! The acquisition preamble is a PN sequence whose sharp circular
//! autocorrelation (N at lag 0, −1 elsewhere for an m-sequence) is what the
//! parallelized correlator bank searches for.

/// A Fibonacci LFSR over GF(2) defined by its tap polynomial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    /// Tap mask: bit `i` set means stage `i+1` feeds the XOR (LSB-first).
    taps: u32,
    degree: u32,
    state: u32,
}

impl Lfsr {
    /// Creates an LFSR of the given degree with a primitive tap polynomial
    /// from the built-in table, seeded with the all-ones state.
    ///
    /// Supported degrees: 3–15 (sequence lengths 7–32767).
    ///
    /// # Panics
    ///
    /// Panics for unsupported degrees.
    pub fn msequence(degree: u32) -> Self {
        let taps = primitive_taps(degree);
        Lfsr {
            taps,
            degree,
            state: (1 << degree) - 1,
        }
    }

    /// Creates an LFSR with explicit taps and seed.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or above 31, or the seed is zero.
    pub fn with_taps(degree: u32, taps: u32, seed: u32) -> Self {
        assert!((1..=31).contains(&degree), "degree must be 1..=31");
        let mask = (1u32 << degree) - 1;
        assert!(seed & mask != 0, "LFSR seed must be non-zero");
        Lfsr {
            taps,
            degree,
            state: seed & mask,
        }
    }

    /// Sequence period `2^degree − 1`.
    pub fn period(&self) -> usize {
        (1usize << self.degree) - 1
    }

    /// Produces the next output bit and steps the register.
    pub fn next_bit(&mut self) -> bool {
        let out = self.state & 1 != 0;
        let mut fb = 0u32;
        let mut t = self.taps;
        while t != 0 {
            let pos = t.trailing_zeros();
            fb ^= (self.state >> pos) & 1;
            t &= t - 1;
        }
        self.state = (self.state >> 1) | (fb << (self.degree - 1));
        out
    }

    /// Generates `n` bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Generates one full period as ±1 chips (`true → +1`).
    pub fn chips(&mut self) -> Vec<f64> {
        let mut out = Vec::new();
        self.chips_into(&mut out);
        out
    }

    /// [`Lfsr::chips`] into a caller-owned buffer (allocation-free once the
    /// capacity suffices).
    pub fn chips_into(&mut self, out: &mut Vec<f64>) {
        let n = self.period();
        out.clear();
        out.extend((0..n).map(|_| if self.next_bit() { 1.0 } else { -1.0 }));
    }
}

/// Primitive polynomial tap masks for degrees 3–15 (Fibonacci convention,
/// feedback from the tapped stages XORed into the top).
fn primitive_taps(degree: u32) -> u32 {
    // Tap masks for the update rule used by `next_bit` (feedback = XOR of
    // the masked state bits, shifted into the top). Mask bit i corresponds
    // to the x^i term of a primitive polynomial x^degree + … + 1; all
    // entries verified maximal-length against this exact implementation.
    match degree {
        3 => 0o3,   // x^3 + x + 1
        4 => 0o3,   // x^4 + x + 1
        5 => 0o5,   // x^5 + x^2 + 1
        6 => 0o3,   // x^6 + x + 1
        7 => 0o3,   // x^7 + x + 1
        8 => 0o35,  // x^8 + x^4 + x^3 + x^2 + 1
        9 => 0o21,  // x^9 + x^4 + 1
        10 => 0o11, // x^10 + x^3 + 1
        11 => 0o5,  // x^11 + x^2 + 1
        12 => 0o123, // x^12 + x^6 + x^4 + x + 1
        13 => 0o33, // x^13 + x^4 + x^3 + x + 1
        14 => 0o53, // x^14 + x^5 + x^3 + x + 1
        15 => 0o3,  // x^15 + x + 1
        _ => panic!("unsupported m-sequence degree {degree} (3..=15)"),
    }
}

/// Generates one period of an m-sequence of the given degree as ±1 chips.
///
/// ```
/// use uwb_phy::pn::msequence_chips;
/// let seq = msequence_chips(7);
/// assert_eq!(seq.len(), 127);
/// ```
pub fn msequence_chips(degree: u32) -> Vec<f64> {
    Lfsr::msequence(degree).chips()
}

/// [`msequence_chips`] into a caller-owned buffer (allocation-free once the
/// capacity suffices).
pub fn msequence_chips_into(degree: u32, out: &mut Vec<f64>) {
    Lfsr::msequence(degree).chips_into(out);
}

/// Generates a Gold code of degree `n` by XORing two m-sequences with
/// different tap sets at relative phase `shift`. Gold families give many
/// codes with bounded cross-correlation — useful when multiple links share
/// a channel.
///
/// # Panics
///
/// Panics for unsupported degrees (preferred pairs are tabulated for 5, 7
/// and 9; each pair verified to meet the Gold bound `2^((n+2)/2) + 1` under
/// this module's LFSR convention).
pub fn gold_code(degree: u32, shift: usize) -> Vec<f64> {
    let (taps_a, taps_b) = match degree {
        5 => (0o5u32, 0o17u32),
        7 => (0o3u32, 0o11u32),
        9 => (0o21u32, 0o33u32),
        _ => panic!("unsupported Gold code degree {degree}"),
    };
    let n = (1usize << degree) - 1;
    let mut a = Lfsr::with_taps(degree, taps_a, (1 << degree) - 1);
    let mut b = Lfsr::with_taps(degree, taps_b, (1 << degree) - 1);
    let seq_a = a.bits(n);
    let mut seq_b = b.bits(n);
    seq_b.rotate_left(shift % n);
    seq_a
        .iter()
        .zip(&seq_b)
        .map(|(&x, &y)| if x ^ y { 1.0 } else { -1.0 })
        .collect()
}

/// The 13-chip Barker code — the classic start-frame-delimiter pattern with
/// ideal aperiodic autocorrelation sidelobes of |1|.
pub fn barker13() -> Vec<f64> {
    BARKER13.to_vec()
}

/// The Barker-13 chip sequence as a constant (allocation-free access).
pub const BARKER13: [f64; 13] = [
    1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0,
];

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::correlation::circular_autocorrelation;

    #[test]
    fn msequence_periods() {
        for degree in 3..=12u32 {
            let seq = msequence_chips(degree);
            assert_eq!(seq.len(), (1usize << degree) - 1, "degree {degree}");
        }
    }

    #[test]
    fn msequence_is_full_period() {
        // The LFSR must cycle through all 2^n - 1 non-zero states: the
        // sequence must not repeat early. Check balance property:
        // (2^(n-1)) ones vs (2^(n-1) - 1) zeros.
        for degree in [3u32, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15] {
            let mut lfsr = Lfsr::msequence(degree);
            let bits = lfsr.bits((1usize << degree) - 1);
            let ones = bits.iter().filter(|&&b| b).count();
            assert_eq!(
                ones,
                1usize << (degree - 1),
                "degree {degree} is not maximal-length"
            );
        }
    }

    #[test]
    fn msequence_autocorrelation_two_valued() {
        for degree in [5u32, 7, 9] {
            let seq = msequence_chips(degree);
            let n = seq.len() as f64;
            let ac = circular_autocorrelation(&seq);
            assert!((ac[0] - n).abs() < 1e-9);
            for &v in &ac[1..] {
                assert!(
                    (v + 1.0).abs() < 1e-9,
                    "degree {degree}: off-peak {v} (expected -1)"
                );
            }
        }
    }

    #[test]
    fn lfsr_deterministic() {
        let a = Lfsr::msequence(7).bits(100);
        let b = Lfsr::msequence(7).bits(100);
        assert_eq!(a, b);
    }

    #[test]
    fn gold_code_properties() {
        let n = 127;
        let g0 = gold_code(7, 0);
        let g1 = gold_code(7, 13);
        assert_eq!(g0.len(), n);
        assert_ne!(g0, g1);
        // Gold cross-correlation is bounded by ~ 2^((n+2)/2) + 1 = 17 for n=7.
        let mut cross_max = 0.0f64;
        for lag in 0..n {
            let c: f64 = (0..n).map(|i| g0[i] * g1[(i + lag) % n]).sum();
            cross_max = cross_max.max(c.abs());
        }
        assert!(cross_max <= 17.0 + 1e-9, "cross-corr {cross_max}");
    }

    #[test]
    fn barker_autocorrelation_sidelobes() {
        let b = barker13();
        assert_eq!(b.len(), 13);
        // Aperiodic autocorrelation sidelobes all <= 1.
        for lag in 1..13 {
            let c: f64 = (0..13 - lag).map(|i| b[i] * b[i + lag]).sum();
            assert!(c.abs() <= 1.0 + 1e-9, "lag {lag}: {c}");
        }
    }

    #[test]
    fn chips_are_pm_one() {
        let seq = msequence_chips(8);
        assert!(seq.iter().all(|&c| c == 1.0 || c == -1.0));
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn bad_degree_panics() {
        msequence_chips(20);
    }

    #[test]
    #[should_panic(expected = "seed must be non-zero")]
    fn zero_seed_panics() {
        Lfsr::with_taps(5, 0b10100, 0);
    }
}
