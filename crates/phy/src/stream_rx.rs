//! Incremental, bounded-memory packet scanning over a sample stream.
//!
//! [`Gen2Receiver::receive_stream`] needs the whole capture resident and
//! re-digitizes the entire remaining record on every attempt — O(record²)
//! work on long captures. [`StreamRx`] runs the same acquire → decode → skip
//! state machine *incrementally*: callers push arbitrarily sized blocks of
//! complex-baseband samples, the receiver retains only a fixed window of
//! history (about one preamble period of search slack plus one maximum frame
//! span), and decoded packets come out tagged with their absolute sample
//! offset in the stream.
//!
//! # State machine
//!
//! ```text
//!            ┌────────────── miss: stride one preamble period ─────────────┐
//!            ▼                                                             │
//!      ┌───────────┐  preamble found   ┌──────────┐  header decoded  ┌──────────┐
//!  ──▶ │ Searching │ ────────────────▶ │ Acquired │ ───────────────▶ │ Decoding │
//!      └───────────┘                   └──────────┘                  └──────────┘
//!            ▲    decode failed: skip past the │ acquired preamble         │
//!            └───────────────┴──────────────────────────── packet out ◀────┘
//! ```
//!
//! * **Searching** — waits until one preamble period of candidate phases
//!   (plus the correlation template) is buffered past the scan cursor, then
//!   runs coarse acquisition on that fixed window. A preamble straddling a
//!   block boundary is still caught: the window is defined by *absolute*
//!   sample indices, never by block edges.
//! * **Acquired** — a preamble was found at a known offset; waits until the
//!   SFD and header slots (plus RAKE finger/pulse margin) are buffered, then
//!   estimates the channel and decodes the header to learn the payload
//!   length.
//! * **Decoding** — waits until the full frame span for that payload length
//!   is buffered, then runs the one-shot frame decode (channel estimation →
//!   RAKE → header → payload → CRC).
//!
//! Decode results are deterministic functions of absolute sample positions
//! and the stream contents, so the decoded packets are **identical for any
//! push-block size** — pushing 64 samples at a time, 4096 at a time, or the
//! whole record at once yields the same packets at the same offsets.

use crate::acquisition::AcquisitionResult;
use crate::error::PhyError;
use crate::packet::{header_slot_count, payload_slot_count, Header};
use crate::receiver::{
    Gen2Receiver, ReceivedPacket, RxState, CIR_PRE_SAMPLES, CIR_WINDOW, SFD_SLOTS,
};
use crate::Gen2Config;
use uwb_dsp::Complex;

/// Externally visible phase of the [`StreamRx`] state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPhase {
    /// Scanning for a preamble.
    Searching,
    /// Preamble found; waiting for the header slots to stream in.
    Acquired,
    /// Header decoded; waiting for the full frame span to stream in.
    Decoding,
}

/// Internal phase, carrying the evidence gathered so far.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Searching,
    Acquired { acq: AcquisitionResult },
    Decoding { acq: AcquisitionResult, header: Header },
}

/// The incremental streaming receiver.
///
/// See the [module docs](self) for the state machine. Construction wraps a
/// [`Gen2Receiver`]; `max_payload_len` bounds both the memory footprint and
/// the largest frame the scanner will wait for (a decoded header announcing
/// a longer payload is treated as a corrupted frame and skipped).
///
/// # Example
///
/// ```
/// use uwb_phy::{Gen2Config, Gen2Transmitter, StreamRx};
///
/// # fn main() -> Result<(), uwb_phy::PhyError> {
/// let cfg = Gen2Config { preamble_repeats: 2, ..Gen2Config::nominal_100mbps() };
/// let tx = Gen2Transmitter::new(cfg.clone())?;
/// let burst = tx.transmit_packet(b"streamed")?;
/// let mut record = vec![uwb_dsp::Complex::ZERO; 1000];
/// record.extend_from_slice(&burst.samples);
/// record.extend(std::iter::repeat(uwb_dsp::Complex::ZERO).take(3000));
///
/// let mut rx = StreamRx::new(cfg, 256)?;
/// for block in record.chunks(512) {
///     rx.push_block(block);
/// }
/// rx.finish();
/// let packets: Vec<_> = rx.drain_packets().collect();
/// assert_eq!(packets.len(), 1);
/// assert_eq!(packets[0].1.payload, b"streamed");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamRx {
    rx: Gen2Receiver,
    state: RxState,
    /// Retained window of the stream: `buf[0]` is absolute sample `base`.
    buf: Vec<Complex>,
    /// Absolute sample index of `buf[0]`.
    base: usize,
    /// Absolute sample index of the next attempt window.
    cursor: usize,
    phase: Phase,
    packets: Vec<(usize, ReceivedPacket)>,
    max_payload_len: usize,
    /// Total samples pushed so far (absolute end of the stream seen).
    pushed: usize,
}

impl StreamRx {
    /// Creates a streaming receiver for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] if the configuration fails
    /// validation.
    ///
    /// # Panics
    ///
    /// Panics if `max_payload_len == 0`.
    pub fn new(config: Gen2Config, max_payload_len: usize) -> Result<Self, PhyError> {
        Ok(StreamRx::from_receiver(
            Gen2Receiver::new(config)?,
            max_payload_len,
        ))
    }

    /// Wraps an existing receiver (shares its configuration and templates).
    ///
    /// # Panics
    ///
    /// Panics if `max_payload_len == 0`.
    pub fn from_receiver(rx: Gen2Receiver, max_payload_len: usize) -> Self {
        assert!(max_payload_len > 0, "max payload length must be positive");
        StreamRx {
            rx,
            state: RxState::new(),
            buf: Vec::new(),
            base: 0,
            cursor: 0,
            phase: Phase::Searching,
            packets: Vec::new(),
            max_payload_len,
            pushed: 0,
        }
    }

    /// The wrapped receiver's configuration.
    pub fn config(&self) -> &Gen2Config {
        self.rx.config()
    }

    /// The externally visible scan phase.
    pub fn phase(&self) -> StreamPhase {
        match self.phase {
            Phase::Searching => StreamPhase::Searching,
            Phase::Acquired { .. } => StreamPhase::Acquired,
            Phase::Decoding { .. } => StreamPhase::Decoding,
        }
    }

    /// Absolute sample index the next attempt window starts at.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Total samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.pushed
    }

    /// Samples currently retained in the history window.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }

    /// Capacity of the history window (bounded: about one acquisition search
    /// window plus one maximum frame span, independent of stream length).
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Packets decoded so far and not yet drained, with their absolute
    /// sample offsets.
    pub fn packets(&self) -> &[(usize, ReceivedPacket)] {
        &self.packets
    }

    /// Drains the decoded packets accumulated so far.
    pub fn drain_packets(&mut self) -> std::vec::Drain<'_, (usize, ReceivedPacket)> {
        self.packets.drain(..)
    }

    /// Pushes a block of complex-baseband samples into the scanner and runs
    /// the state machine as far as the buffered stream allows. Returns the
    /// number of packets decoded by this push (retrieve them with
    /// [`StreamRx::drain_packets`] or [`StreamRx::packets`]).
    ///
    /// Block size is arbitrary and does not affect the decoded output.
    pub fn push_block(&mut self, block: &[Complex]) -> usize {
        self.pushed += block.len();
        // Drop any retained prefix the scan has already committed to skip.
        self.discard_front();
        let mut block = block;
        if self.buf.is_empty() && self.base < self.cursor {
            // The whole retained window was skipped; the incoming block may
            // start before the cursor too (long dead frame being skipped).
            let skip = (self.cursor - self.base).min(block.len());
            self.base += skip;
            block = &block[skip..];
        }
        self.buf.extend_from_slice(block);
        let before = self.packets.len();
        self.pump(false);
        self.packets.len() - before
    }

    /// Flushes the state machine at end-of-stream: attempts resolution of
    /// any pending acquisition/decode with the samples that remain (mirroring
    /// what the batch scan does with a truncated record tail). Returns the
    /// number of packets decoded by the flush.
    ///
    /// Idempotent; the scanner can keep receiving [`StreamRx::push_block`]
    /// calls afterwards if the stream resumes.
    pub fn finish(&mut self) -> usize {
        let before = self.packets.len();
        self.pump(true);
        self.packets.len() - before
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Samples needed past `est_start` to read `n_slots` slot statistics
    /// (last finger + matched-filter pulse fully in-window).
    fn slot_span(&self, n_slots: usize) -> usize {
        n_slots * self.config().samples_per_slot() + CIR_WINDOW + self.rx.pulse_len()
    }

    /// Frame length in slots for a given payload length.
    fn frame_slots(&self, payload_len: usize) -> usize {
        let cfg = self.config();
        cfg.preamble_length() * cfg.preamble_repeats
            + SFD_SLOTS
            + header_slot_count(cfg)
            + payload_slot_count(payload_len, cfg)
    }

    /// Advances the state machine until it runs out of buffered samples.
    /// With `draining` set, pending phases resolve against whatever tail
    /// remains instead of waiting for a full window.
    fn pump(&mut self, draining: bool) {
        let sps = self.config().samples_per_slot();
        let period = self.config().preamble_length() * sps;
        let preamble_slots = self.config().preamble_length() * self.config().preamble_repeats;
        let n_header = header_slot_count(self.config());
        loop {
            let have_end = self.base + self.buf.len();
            match self.phase {
                Phase::Searching => {
                    // One preamble period of candidate phases, each
                    // correlating one template length of samples.
                    let search_len = period + CIR_PRE_SAMPLES;
                    let need = if draining {
                        // Same minimum the batch scan applies to a record
                        // tail: a full preamble plus header margin.
                        period * self.config().preamble_repeats + 64 * sps
                    } else {
                        search_len + self.rx.template_len() - 1
                    };
                    if have_end < self.cursor + need {
                        return;
                    }
                    let end = if draining { have_end } else { self.cursor + need };
                    let acq = self.digitize_and_acquire(end, search_len);
                    if !acq.detected {
                        uwb_obs::event!("acq_miss");
                        self.cursor += period;
                        self.discard_front();
                        continue;
                    }
                    self.phase = Phase::Acquired { acq };
                }
                Phase::Acquired { acq } => {
                    let est_rel = acq.offset.saturating_sub(CIR_PRE_SAMPLES);
                    let need =
                        est_rel + self.slot_span(preamble_slots + SFD_SLOTS + n_header);
                    let full_end = self.cursor + need;
                    if have_end < full_end && !draining {
                        return;
                    }
                    let end = full_end.min(have_end);
                    if end <= self.cursor {
                        return;
                    }
                    self.digitize_window(end);
                    let header = self.rx.decode_header_at(&mut self.state, acq.offset);
                    match header {
                        Ok(h) if h.payload_len <= self.max_payload_len => {
                            self.phase = Phase::Decoding { acq, header: h };
                        }
                        _ => {
                            // Acquired but the header is unusable: skip past
                            // the preamble that was actually acquired.
                            self.skip_past_preamble(acq.offset, period);
                            if draining && have_end < full_end {
                                // The tail was already short; a re-search of
                                // the same truncated tail cannot progress.
                                return;
                            }
                        }
                    }
                }
                Phase::Decoding { acq, header } => {
                    let est_rel = acq.offset.saturating_sub(CIR_PRE_SAMPLES);
                    let need = est_rel + self.slot_span(self.frame_slots(header.payload_len));
                    let full_end = self.cursor + need;
                    if have_end < full_end && !draining {
                        return;
                    }
                    let end = full_end.min(have_end);
                    if end <= self.cursor {
                        return;
                    }
                    self.digitize_window(end);
                    match self.rx.decode_frame_at(&mut self.state, acq.offset) {
                        Ok((hdr, payload)) => {
                            let frame_start = self.cursor + acq.offset;
                            let advance = acq.offset + self.frame_slots(hdr.payload_len) * sps;
                            self.packets.push((
                                frame_start,
                                ReceivedPacket {
                                    payload,
                                    header: hdr,
                                    acquisition: acq,
                                    estimate: self.state.estimate.clone(),
                                },
                            ));
                            self.cursor += advance.max(period);
                            self.phase = Phase::Searching;
                            self.discard_front();
                        }
                        Err(_) => {
                            self.skip_past_preamble(acq.offset, period);
                            if draining && have_end < full_end {
                                return;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Digitizes `[cursor, end)` and runs coarse acquisition over
    /// `search_len` candidate phases.
    fn digitize_and_acquire(&mut self, end: usize, search_len: usize) -> AcquisitionResult {
        self.digitize_window(end);
        let _t = uwb_obs::span!("rx_acquisition");
        self.rx
            .acquire_into(&self.state.digitized, search_len, &mut self.state.scratch)
    }

    /// Digitizes the absolute window `[cursor, end)` into the receive state.
    fn digitize_window(&mut self, end: usize) {
        let a = self.cursor - self.base;
        let b = end - self.base;
        let _t = uwb_obs::span!("rx_agc_adc");
        self.rx.digitize_into(&self.buf[a..b], &mut self.state.digitized);
        self.state.chanest_memo = None;
    }

    /// Decode failure after a successful acquisition: advance past the
    /// preamble that was acquired and fall back to searching.
    fn skip_past_preamble(&mut self, offset: usize, period: usize) {
        self.cursor += offset + period;
        self.phase = Phase::Searching;
        self.discard_front();
    }

    /// Drops retained samples before the cursor (they can never be read
    /// again: every window starts at `cursor`).
    fn discard_front(&mut self) {
        let k = self.cursor.saturating_sub(self.base).min(self.buf.len());
        if k > 0 {
            self.buf.drain(..k);
            self.base += k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Gen2Transmitter;
    use uwb_sim::awgn::add_awgn_complex;
    use uwb_sim::Rand;

    fn cfg() -> Gen2Config {
        Gen2Config {
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        }
    }

    /// Three noisy packets with silence gaps, as in the batch scan test.
    fn three_packet_record() -> (Vec<Complex>, Vec<Vec<u8>>) {
        let tx = Gen2Transmitter::new(cfg()).unwrap();
        let payloads: Vec<Vec<u8>> = vec![
            b"first packet".to_vec(),
            b"second, longer packet with more bytes".to_vec(),
            b"third".to_vec(),
        ];
        let mut record = vec![Complex::ZERO; 3000];
        for (i, p) in payloads.iter().enumerate() {
            let burst = tx.transmit_packet(p).unwrap();
            record.extend_from_slice(&burst.samples);
            record.extend(vec![Complex::ZERO; 2000 + i * 1500]);
        }
        let mut rng = Rand::new(21);
        let p_sig = uwb_dsp::complex::mean_power(&record);
        let noisy = add_awgn_complex(&record, p_sig / 10.0, &mut rng);
        (noisy, payloads)
    }

    fn run_stream(record: &[Complex], block_len: usize) -> Vec<(usize, Vec<u8>)> {
        let mut srx = StreamRx::new(cfg(), 256).unwrap();
        for block in record.chunks(block_len.max(1)) {
            srx.push_block(block);
        }
        srx.finish();
        srx.drain_packets()
            .map(|(off, p)| (off, p.payload))
            .collect()
    }

    #[test]
    fn finds_all_packets_in_stream() {
        let (record, payloads) = three_packet_record();
        let got = run_stream(&record, 1024);
        assert_eq!(got.len(), 3, "found {}", got.len());
        for ((off, payload), expected) in got.iter().zip(&payloads) {
            assert_eq!(payload, expected);
            assert!(*off >= 2900, "offset {off}");
        }
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn block_size_does_not_change_output() {
        let (record, _) = three_packet_record();
        let whole = run_stream(&record, record.len());
        for block_len in [64usize, 577, 1024, 4096] {
            let got = run_stream(&record, block_len);
            assert_eq!(got, whole, "block_len {block_len} diverged");
        }
    }

    #[test]
    fn preamble_straddling_block_boundary_is_caught() {
        let tx = Gen2Transmitter::new(cfg()).unwrap();
        let burst = tx.transmit_packet(b"straddle me").unwrap();
        // Place the packet so its preamble crosses a 4096-sample boundary.
        let mut record = vec![Complex::ZERO; 4096 - 300];
        record.extend_from_slice(&burst.samples);
        record.extend(vec![Complex::ZERO; 5000]);
        let got = run_stream(&record, 4096);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, b"straddle me");
    }

    #[test]
    fn noise_only_stream_stays_empty_and_bounded() {
        let mut rng = Rand::new(33);
        let mut srx = StreamRx::new(cfg(), 256).unwrap();
        let noise = uwb_sim::awgn::complex_noise(60_000, 1.0, &mut rng);
        for block in noise.chunks(2048) {
            srx.push_block(block);
        }
        srx.finish();
        assert!(srx.packets().is_empty());
        assert_eq!(srx.phase(), StreamPhase::Searching);
        // The retained window never exceeds one attempt span.
        let sps = srx.config().samples_per_slot();
        let period = srx.config().preamble_length() * sps;
        let bound = 2 * period + CIR_PRE_SAMPLES + 2048;
        assert!(
            srx.buffer_capacity() <= bound * 2,
            "capacity {} vs bound {bound}",
            srx.buffer_capacity()
        );
    }

    #[test]
    fn memory_stays_bounded_across_many_frames() {
        let tx = Gen2Transmitter::new(cfg()).unwrap();
        let burst = tx.transmit_packet(b"bounded memory").unwrap();
        let mut frame = burst.samples.clone();
        frame.extend(vec![Complex::ZERO; 1500]);

        let mut srx = StreamRx::new(cfg(), 256).unwrap();
        let mut cap_after_two = 0usize;
        for i in 0..30 {
            for block in frame.chunks(1024) {
                srx.push_block(block);
            }
            if i == 1 {
                cap_after_two = srx.buffer_capacity();
            }
        }
        srx.finish();
        assert_eq!(srx.packets().len(), 30);
        assert_eq!(
            srx.buffer_capacity(),
            cap_after_two,
            "history window kept growing"
        );
    }

    #[test]
    fn matches_batch_scan_results() {
        let (record, _) = three_packet_record();
        let rx = Gen2Receiver::new(cfg()).unwrap();
        #[allow(deprecated)]
        let batch = rx.receive_stream(&record);
        let streamed = run_stream(&record, 1024);
        assert_eq!(streamed.len(), batch.len());
        for ((s_off, s_payload), (b_off, b_packet)) in streamed.iter().zip(&batch) {
            assert_eq!(s_payload, &b_packet.payload);
            assert_eq!(s_off, b_off, "packet offsets diverged");
        }
    }

    #[test]
    fn corrupted_frame_does_not_stall_the_scan() {
        let tx = Gen2Transmitter::new(cfg()).unwrap();
        let good = tx.transmit_packet(b"the good one").unwrap();
        let mut bad = tx.transmit_packet(b"the bad one!").unwrap();
        // Null out everything after the preamble: acquisition will lock but
        // the header cannot decode.
        let sps = tx.config().samples_per_slot();
        let preamble_samples =
            tx.config().preamble_length() * tx.config().preamble_repeats * sps;
        for z in bad.samples[preamble_samples..].iter_mut() {
            *z = Complex::ZERO;
        }
        let mut record = vec![Complex::ZERO; 1000];
        record.extend_from_slice(&bad.samples);
        record.extend(vec![Complex::ZERO; 1200]);
        record.extend_from_slice(&good.samples);
        record.extend(vec![Complex::ZERO; 4000]);
        let got = run_stream(&record, 1000);
        assert_eq!(got.len(), 1, "got {:?}", got.len());
        assert_eq!(got[0].1, b"the good one");
    }

    #[test]
    fn empty_and_tiny_pushes_are_fine() {
        let mut srx = StreamRx::new(cfg(), 64).unwrap();
        assert_eq!(srx.push_block(&[]), 0);
        assert_eq!(srx.push_block(&[Complex::ONE]), 0);
        assert_eq!(srx.finish(), 0);
        assert_eq!(srx.samples_pushed(), 1);
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn zero_max_payload_panics() {
        let _ = StreamRx::new(cfg(), 0);
    }
}
