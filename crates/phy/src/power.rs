//! Activity-based power model.
//!
//! Paper §1: "The large complexity required in the synchronization and
//! demodulation of the UWB signal results in more than half of the system
//! power being dissipated in the digital back end and the ADC." The silicon
//! itself is unreproducible; this model derives block-level power from
//! operation counts (MACs, adds, comparator decisions) at 0.18 µm / 1.8 V
//! energy-per-operation constants, so the *architectural* claim can be
//! checked and the §3 power/QoS trade-offs explored.

use crate::config::Gen2Config;

/// Energy-per-operation constants (joules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConstants {
    /// One real multiply-accumulate in a dedicated datapath.
    pub mac: f64,
    /// One addition / compare-select.
    pub add: f64,
    /// One comparator decision (flash slice, SAR bit trial).
    pub comparator: f64,
    /// One SAR capacitor-DAC settle per bit trial.
    pub dac_settle: f64,
}

impl EnergyConstants {
    /// Representative 0.18 µm, 1.8 V values.
    pub fn cmos180() -> Self {
        EnergyConstants {
            mac: 1.0e-12,
            add: 0.2e-12,
            comparator: 0.4e-12,
            dac_settle: 0.8e-12,
        }
    }
}

/// Power class of a block, for the "back end + ADC > half" bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerClass {
    /// RF/analog blocks (LNA, mixers, synthesizer, filters).
    Analog,
    /// The data converters.
    Adc,
    /// The digital back end.
    Digital,
}

/// One block's contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPower {
    /// Block name (e.g. "matched filter").
    pub name: String,
    /// Average power in milliwatts.
    pub mw: f64,
    /// Which class the block belongs to.
    pub class: PowerClass,
}

/// A complete receiver power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    /// Per-block figures.
    pub blocks: Vec<BlockPower>,
}

impl PowerBreakdown {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.blocks.iter().map(|b| b.mw).sum()
    }

    /// Power of one class in mW.
    pub fn class_mw(&self, class: PowerClass) -> f64 {
        self.blocks
            .iter()
            .filter(|b| b.class == class)
            .map(|b| b.mw)
            .sum()
    }

    /// Fraction of total power in the digital back end plus the ADCs — the
    /// paper claims this exceeds 0.5.
    pub fn digital_and_adc_fraction(&self) -> f64 {
        let t = self.total_mw();
        if t > 0.0 {
            (self.class_mw(PowerClass::Digital) + self.class_mw(PowerClass::Adc)) / t
        } else {
            0.0
        }
    }
}

/// The receiver power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Energy constants in use.
    pub energy: EnergyConstants,
    /// Fixed analog power: LNA (mW).
    pub lna_mw: f64,
    /// Fixed analog power: mixers and LO buffers (mW).
    pub mixer_mw: f64,
    /// Fixed analog power: frequency synthesizer / PLL (mW).
    pub synthesizer_mw: f64,
    /// Fixed analog power: baseband VGAs and filters (mW).
    pub baseband_analog_mw: f64,
    /// Hardware parallelism of the acquisition correlator bank.
    pub acquisition_parallelism: usize,
    /// Fraction of time the acquisition engine is active (preamble duty).
    pub acquisition_duty: f64,
}

impl PowerModel {
    /// Default 0.18 µm receiver model (32-way acquisition, 10 % duty).
    pub fn cmos180() -> Self {
        PowerModel {
            energy: EnergyConstants::cmos180(),
            lna_mw: 9.0,
            mixer_mw: 8.0,
            synthesizer_mw: 12.0,
            baseband_analog_mw: 4.0,
            acquisition_parallelism: 32,
            acquisition_duty: 0.1,
        }
    }

    /// Computes the receiver breakdown for a link configuration.
    pub fn breakdown(&self, config: &Gen2Config) -> PowerBreakdown {
        let e = self.energy;
        let fs = config.sample_rate.as_hz();
        let prf = config.prf.as_hz();
        let symbol_rate =
            prf / (config.pulses_per_bit * config.modulation.slots_per_symbol()) as f64;
        // Pulse template length at fs (the matched filter's tap count).
        let pulse_taps = crate::pulse::PulseShape::gen2_default()
            .generate(config.sample_rate)
            .len();

        let mut blocks = Vec::new();
        let mw = 1e3; // W -> mW

        // --- Analog front end (fixed) ---
        blocks.push(BlockPower {
            name: "LNA".into(),
            mw: self.lna_mw,
            class: PowerClass::Analog,
        });
        blocks.push(BlockPower {
            name: "mixers + LO".into(),
            mw: self.mixer_mw,
            class: PowerClass::Analog,
        });
        blocks.push(BlockPower {
            name: "frequency synthesizer".into(),
            mw: self.synthesizer_mw,
            class: PowerClass::Analog,
        });
        blocks.push(BlockPower {
            name: "baseband VGA/filters".into(),
            mw: self.baseband_analog_mw,
            class: PowerClass::Analog,
        });

        // --- ADCs: two SAR converters at the sample rate ---
        let sar_energy_per_conv =
            config.adc_bits as f64 * (e.comparator + e.dac_settle);
        blocks.push(BlockPower {
            name: format!("2x {}-bit SAR ADC", config.adc_bits),
            mw: 2.0 * fs * sar_energy_per_conv * mw,
            class: PowerClass::Adc,
        });

        // --- Digital back end ---
        // Pulse matched filter: complex input x real template = 2 real MACs
        // per tap per sample, at the full sample rate. The dominant block.
        blocks.push(BlockPower {
            name: "pulse matched filter".into(),
            mw: pulse_taps as f64 * fs * 2.0 * e.mac * mw,
            class: PowerClass::Digital,
        });

        // Acquisition correlator bank: P parallel correlators, each one
        // complex MAC per chip, duty-cycled to the preamble.
        blocks.push(BlockPower {
            name: format!("{}-way acquisition bank", self.acquisition_parallelism),
            mw: self.acquisition_parallelism as f64 * prf * 2.0 * e.mac * self.acquisition_duty
                * mw,
            class: PowerClass::Digital,
        });

        // Channel estimator: `window` correlation lags during the preamble.
        let window = 64.0;
        blocks.push(BlockPower {
            name: "channel estimator (4-bit CIR)".into(),
            mw: window * prf * 2.0 * e.mac * self.acquisition_duty * mw,
            class: PowerClass::Digital,
        });

        // RAKE: fingers x complex MAC per symbol.
        blocks.push(BlockPower {
            name: format!("RAKE ({} fingers)", config.rake_fingers),
            mw: config.rake_fingers as f64 * symbol_rate * 4.0 * e.mac * mw,
            class: PowerClass::Digital,
        });

        // MLSE equalizer (if enabled): states x 2 branches x ACS per symbol.
        if config.mlse_taps > 1 {
            let states = (1usize << (config.mlse_taps - 1)) as f64;
            blocks.push(BlockPower {
                name: format!("MLSE ({} taps)", config.mlse_taps),
                mw: states * 2.0 * symbol_rate * (e.mac + 2.0 * e.add) * mw,
                class: PowerClass::Digital,
            });
        }

        // FEC Viterbi decoder (if enabled).
        if let Some(code) = config.fec {
            let states = code.states() as f64;
            let coded_rate = symbol_rate * config.modulation.bits_per_symbol() as f64;
            blocks.push(BlockPower {
                name: format!("Viterbi decoder (K={})", code.constraint_length),
                mw: states * 2.0 * coded_rate * 3.0 * e.add * mw,
                class: PowerClass::Digital,
            });
        }

        // Spectral monitor: a 1024-point FFT every ~100 µs.
        let fft_ops = 1024.0 * 10.0; // N log2 N
        blocks.push(BlockPower {
            name: "spectral monitor".into(),
            mw: fft_ops * 4.0 * e.mac / 100e-6 * mw,
            class: PowerClass::Digital,
        });

        // Clocking / control overhead: 10 % of digital.
        let digital: f64 = blocks
            .iter()
            .filter(|b| b.class == PowerClass::Digital)
            .map(|b| b.mw)
            .sum();
        blocks.push(BlockPower {
            name: "clock tree + control".into(),
            mw: 0.1 * digital,
            class: PowerClass::Digital,
        });

        PowerBreakdown { blocks }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::cmos180()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fec::ConvCode;

    #[test]
    fn paper_claim_backend_plus_adc_over_half() {
        let model = PowerModel::cmos180();
        let bd = model.breakdown(&Gen2Config::nominal_100mbps());
        let f = bd.digital_and_adc_fraction();
        assert!(f > 0.5, "digital+ADC fraction {f}");
        assert!(f < 0.95, "analog should still be visible: {f}");
    }

    #[test]
    fn totals_are_plausible_for_018um() {
        let bd = PowerModel::cmos180().breakdown(&Gen2Config::nominal_100mbps());
        let t = bd.total_mw();
        // A 0.18 um UWB receiver lands in the tens-to-low-hundreds of mW.
        assert!(t > 30.0 && t < 300.0, "total {t} mW");
    }

    #[test]
    fn more_fingers_cost_more() {
        let model = PowerModel::cmos180();
        let mut small = Gen2Config::nominal_100mbps();
        small.rake_fingers = 2;
        let mut big = Gen2Config::nominal_100mbps();
        big.rake_fingers = 16;
        assert!(
            model.breakdown(&big).total_mw() > model.breakdown(&small).total_mw()
        );
    }

    #[test]
    fn fec_and_mlse_add_blocks() {
        let model = PowerModel::cmos180();
        let mut cfg = Gen2Config::nominal_100mbps();
        let base_blocks = model.breakdown(&cfg).blocks.len();
        cfg.fec = Some(ConvCode::k7());
        cfg.mlse_taps = 3;
        let bd = model.breakdown(&cfg);
        assert_eq!(bd.blocks.len(), base_blocks + 2);
        assert!(bd.blocks.iter().any(|b| b.name.contains("Viterbi")));
        assert!(bd.blocks.iter().any(|b| b.name.contains("MLSE")));
    }

    #[test]
    fn adc_power_scales_with_bits() {
        let model = PowerModel::cmos180();
        let mut lo = Gen2Config::nominal_100mbps();
        lo.adc_bits = 1;
        let mut hi = Gen2Config::nominal_100mbps();
        hi.adc_bits = 5;
        let adc = |cfg: &Gen2Config| model.breakdown(cfg).class_mw(PowerClass::Adc);
        assert!((adc(&hi) / adc(&lo) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn lower_rate_lowers_digital_power() {
        // Spreading (lower data rate) cuts symbol-rate blocks.
        let model = PowerModel::cmos180();
        let fast = Gen2Config::nominal_100mbps();
        let mut slow = Gen2Config::nominal_100mbps();
        slow.pulses_per_bit = 8;
        let d_fast = model.breakdown(&fast).class_mw(PowerClass::Digital);
        let d_slow = model.breakdown(&slow).class_mw(PowerClass::Digital);
        assert!(d_slow < d_fast);
    }

    #[test]
    fn class_accounting_consistent() {
        let bd = PowerModel::cmos180().breakdown(&Gen2Config::nominal_100mbps());
        let sum = bd.class_mw(PowerClass::Analog)
            + bd.class_mw(PowerClass::Adc)
            + bd.class_mw(PowerClass::Digital);
        assert!((sum - bd.total_mw()).abs() < 1e-9);
        assert!(bd.blocks.iter().all(|b| b.mw >= 0.0));
    }
}
