//! Link adaptation.
//!
//! Paper §3: "This receiver allows us to trade off power dissipation with
//! signal processing complexity, quality of service and data rate, adapting
//! to channel conditions." The policy below maps observed channel conditions
//! to a configuration — spreading factor, FEC, RAKE depth, MLSE — and uses
//! the power model to report what each point costs.

use crate::config::Gen2Config;
use crate::fec::ConvCode;
use crate::power::{PowerBreakdown, PowerModel};

/// Observed channel conditions driving the adaptation decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConditions {
    /// Estimated post-combining SNR in dB.
    pub snr_db: f64,
    /// Estimated rms delay spread in nanoseconds.
    pub delay_spread_ns: f64,
    /// `true` if the spectral monitor currently reports an interferer.
    pub interferer_present: bool,
}

/// One point on the power / rate / robustness trade curve.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The adapted configuration.
    pub config: Gen2Config,
    /// Information bit rate at this point (bits/s).
    pub bit_rate: f64,
    /// Modeled receiver power at this point.
    pub power: PowerBreakdown,
    /// Human-readable rationale.
    pub rationale: String,
}

/// The adaptation policy.
#[derive(Debug, Clone)]
pub struct LinkAdapter {
    base: Gen2Config,
    power_model: PowerModel,
}

impl LinkAdapter {
    /// Creates an adapter that derives operating points from `base`.
    pub fn new(base: Gen2Config, power_model: PowerModel) -> Self {
        LinkAdapter { base, power_model }
    }

    /// Chooses an operating point for the observed conditions.
    ///
    /// Policy (greedy, mirrors the paper's qualitative description):
    /// * high SNR, low dispersion → full rate, minimal hardware;
    /// * growing delay spread → more RAKE fingers, then MLSE;
    /// * low SNR → FEC, then spreading (rate sacrificed for Eb);
    /// * interferer → rely on ≥4-bit ADC (never drop below) + FEC margin.
    pub fn adapt(&self, conditions: &ChannelConditions) -> OperatingPoint {
        let mut cfg = self.base.clone();
        let mut notes: Vec<String> = Vec::new();

        // Dispersion → RAKE depth / MLSE.
        let slot_ns = 1e9 / cfg.prf.as_hz();
        if conditions.delay_spread_ns < slot_ns / 2.0 {
            cfg.rake_fingers = 2;
            cfg.mlse_taps = 0;
            notes.push("low dispersion: 2 fingers".into());
        } else if conditions.delay_spread_ns < 1.5 * slot_ns {
            cfg.rake_fingers = 8;
            cfg.mlse_taps = 0;
            notes.push("moderate dispersion: 8 fingers".into());
        } else {
            cfg.rake_fingers = 16;
            cfg.mlse_taps = ((conditions.delay_spread_ns / slot_ns).ceil() as usize + 1).min(5);
            notes.push(format!(
                "severe dispersion: 16 fingers + {}-tap MLSE",
                cfg.mlse_taps
            ));
        }

        // SNR → FEC / spreading.
        if conditions.snr_db >= 14.0 {
            cfg.fec = None;
            cfg.pulses_per_bit = 1;
            notes.push("high SNR: uncoded full rate".into());
        } else if conditions.snr_db >= 8.0 {
            cfg.fec = Some(ConvCode::k3());
            cfg.pulses_per_bit = 1;
            notes.push("mid SNR: K=3 FEC".into());
        } else if conditions.snr_db >= 4.0 {
            cfg.fec = Some(ConvCode::k7());
            cfg.pulses_per_bit = 2;
            notes.push("low SNR: K=7 FEC + 2x spreading".into());
        } else {
            cfg.fec = Some(ConvCode::k7());
            cfg.pulses_per_bit = 8;
            notes.push("very low SNR: K=7 FEC + 8x spreading".into());
        }

        // Interferer → keep ADC resolution at 4+ bits (paper §1's claim).
        if conditions.interferer_present {
            cfg.adc_bits = cfg.adc_bits.max(4);
            notes.push("interferer: >=4-bit ADC + notch".into());
        }

        let power = self.power_model.breakdown(&cfg);
        OperatingPoint {
            bit_rate: cfg.bit_rate(),
            rationale: notes.join("; "),
            config: cfg,
            power,
        }
    }

    /// Enumerates the trade curve across a grid of conditions — used by the
    /// E12 experiment to print the power-vs-rate frontier.
    pub fn trade_curve(&self, snrs_db: &[f64], delay_ns: f64) -> Vec<OperatingPoint> {
        let mut out = Vec::new();
        self.trade_curve_into(snrs_db, delay_ns, &mut out);
        out
    }

    /// Like [`trade_curve`](Self::trade_curve) but reuses `out`, so callers
    /// that re-evaluate the curve in a loop (the network controller's
    /// adaptation pass) avoid reallocating the vector each time. `out` is
    /// cleared first; its capacity is retained across calls.
    pub fn trade_curve_into(&self, snrs_db: &[f64], delay_ns: f64, out: &mut Vec<OperatingPoint>) {
        out.clear();
        for &snr in snrs_db {
            out.push(self.adapt(&ChannelConditions {
                snr_db: snr,
                delay_spread_ns: delay_ns,
                interferer_present: false,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> LinkAdapter {
        LinkAdapter::new(Gen2Config::nominal_100mbps(), PowerModel::cmos180())
    }

    fn cond(snr_db: f64, delay_ns: f64) -> ChannelConditions {
        ChannelConditions {
            snr_db,
            delay_spread_ns: delay_ns,
            interferer_present: false,
        }
    }

    #[test]
    fn good_channel_full_rate() {
        let op = adapter().adapt(&cond(20.0, 3.0));
        assert_eq!(op.bit_rate, 100e6);
        assert!(op.config.fec.is_none());
        assert_eq!(op.config.pulses_per_bit, 1);
        assert_eq!(op.config.rake_fingers, 2);
    }

    #[test]
    fn bad_snr_sacrifices_rate() {
        let op = adapter().adapt(&cond(2.0, 3.0));
        assert!(op.bit_rate < 10e6, "{}", op.bit_rate);
        assert!(op.config.fec.is_some());
        assert!(op.config.pulses_per_bit >= 8);
    }

    #[test]
    fn dispersion_adds_fingers_and_mlse() {
        let a = adapter();
        let light = a.adapt(&cond(20.0, 3.0));
        let heavy = a.adapt(&cond(20.0, 25.0)); // the paper's ~20 ns regime
        assert!(heavy.config.rake_fingers > light.config.rake_fingers);
        assert!(heavy.config.mlse_taps > 0);
        assert_eq!(light.config.mlse_taps, 0);
    }

    #[test]
    fn rate_monotonic_in_snr() {
        let a = adapter();
        let curve = a.trade_curve(&[0.0, 5.0, 10.0, 16.0], 10.0);
        for w in curve.windows(2) {
            assert!(w[0].bit_rate <= w[1].bit_rate);
        }
    }

    #[test]
    fn power_rate_trade_is_visible() {
        // Robust low-rate mode should burn *less* digital power than the
        // full-rate mode with the same dispersion hardware (symbol rate
        // drops), demonstrating the paper's power/QoS knob.
        let a = adapter();
        let fast = a.adapt(&cond(20.0, 3.0));
        let slow = a.adapt(&cond(0.0, 3.0));
        assert!(slow.bit_rate < fast.bit_rate);
        // Different blocks dominate; just require both breakdowns sane.
        assert!(fast.power.total_mw() > 0.0 && slow.power.total_mw() > 0.0);
    }

    #[test]
    fn interferer_forces_adc_bits() {
        let mut base = Gen2Config::nominal_100mbps();
        base.adc_bits = 1;
        let a = LinkAdapter::new(base, PowerModel::cmos180());
        let op = a.adapt(&ChannelConditions {
            snr_db: 20.0,
            delay_spread_ns: 3.0,
            interferer_present: true,
        });
        assert!(op.config.adc_bits >= 4);
        assert!(op.rationale.contains("interferer"));
    }

    #[test]
    fn trade_curve_into_matches_trade_curve_and_reuses_buffer() {
        let a = adapter();
        let snrs = [0.0, 5.0, 10.0, 16.0, 20.0];
        let fresh = a.trade_curve(&snrs, 10.0);
        let mut reused = Vec::new();
        a.trade_curve_into(&snrs, 10.0, &mut reused);
        assert_eq!(fresh, reused);
        let cap = reused.capacity();
        a.trade_curve_into(&snrs[..3], 10.0, &mut reused);
        assert_eq!(reused.len(), 3);
        assert_eq!(reused.capacity(), cap, "buffer must be reused, not reallocated");
    }

    #[test]
    fn adapted_configs_are_valid() {
        let a = adapter();
        for snr in [0.0, 6.0, 10.0, 20.0] {
            for delay in [2.0, 12.0, 30.0] {
                let op = a.adapt(&cond(snr, delay));
                op.config.validate().unwrap();
            }
        }
    }
}
