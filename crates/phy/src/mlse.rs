//! Maximum-likelihood sequence estimation (Viterbi equalizer).
//!
//! Paper §1: "The inter-symbol interference (ISI) due to multipath can be
//! addressed with a Viterbi demodulator." When the delay spread exceeds the
//! symbol period, the RAKE output still contains symbol-rate ISI; this
//! equalizer runs the Viterbi algorithm over the symbol-spaced channel
//! derived from the 4-bit channel estimate.

use uwb_dsp::Complex;

/// A Viterbi (MLSE) equalizer for BPSK over a known symbol-spaced channel.
#[derive(Debug, Clone, PartialEq)]
pub struct MlseEqualizer {
    /// Symbol-spaced channel taps `h[0..L]` (h[0] = main tap).
    channel: Vec<Complex>,
}

impl MlseEqualizer {
    /// Creates an equalizer for the given symbol-spaced channel.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty, longer than 9 taps (2⁸ states), or
    /// has a zero main tap region (all taps zero).
    pub fn new(channel: Vec<Complex>) -> Self {
        assert!(
            !channel.is_empty() && channel.len() <= 9,
            "channel must have 1..=9 taps"
        );
        assert!(
            channel.iter().any(|h| h.norm_sqr() > 0.0),
            "channel must carry energy"
        );
        MlseEqualizer { channel }
    }

    /// Number of channel taps L.
    pub fn memory(&self) -> usize {
        self.channel.len()
    }

    /// Number of trellis states, `2^(L−1)`.
    pub fn states(&self) -> usize {
        1usize << (self.channel.len() - 1)
    }

    /// Equalizes a block of received symbol statistics, returning hard ±1
    /// decisions as booleans (`true` = +1).
    ///
    /// The trellis starts in the all-(−1) state with symbols *before* the
    /// block assumed to be −1 (idle); ending state is free (traceback from
    /// the best final metric).
    pub fn equalize(&self, received: &[Complex]) -> Vec<bool> {
        if received.is_empty() {
            return Vec::new();
        }
        let (decisions, mut state) = self.run_trellis(received);
        let mut out = Vec::with_capacity(received.len());
        for step in (0..received.len()).rev() {
            let d = decisions[step][state];
            out.push(d & 1 != 0);
            state = (d >> 1) as usize;
        }
        out.reverse();
        out
    }

    /// [`MlseEqualizer::equalize`] writing hard-remodulated BPSK symbols
    /// (`+1` or `−1` on the real axis) into a caller-owned buffer (cleared
    /// first) — the form the Gen2 receiver uses, with the decided-symbol
    /// buffer drawn from its `DspScratch` pool instead of a fresh `Vec<bool>`
    /// per packet.
    ///
    /// # Allocation
    ///
    /// The Viterbi trellis itself still heap-allocates. Precisely, per call
    /// with `N = received.len()` symbols and `S = 2^(L−1)` states:
    ///
    /// * `expected` — one `2·S`-entry table of noiseless branch outputs,
    /// * `metric` — one `S`-entry path-metric vector, plus one fresh
    ///   `S`-entry `next` vector **per input symbol** (the old vector is
    ///   dropped each step),
    /// * `decisions` — one `S`-entry `u16` survivor vector **per input
    ///   symbol**, all `N` retained until traceback (`N·S` u16 total — the
    ///   dominant term).
    ///
    /// This is the documented exception to the receiver's zero-allocation
    /// steady state; the nominal configuration (`mlse_taps == 0`) never
    /// enters this path.
    pub fn equalize_symbols_into(&self, received: &[Complex], out: &mut Vec<Complex>) {
        out.clear();
        if received.is_empty() {
            return;
        }
        let (decisions, mut state) = self.run_trellis(received);
        out.resize(received.len(), Complex::ZERO);
        for step in (0..received.len()).rev() {
            let d = decisions[step][state];
            out[step] = Complex::new(if d & 1 != 0 { 1.0 } else { -1.0 }, 0.0);
            state = (d >> 1) as usize;
        }
    }

    /// Runs the add-compare-select recursion, returning the survivor table
    /// (one `states()`-entry decision vector per input symbol) and the best
    /// final state to start traceback from.
    fn run_trellis(&self, received: &[Complex]) -> (Vec<Vec<u16>>, usize) {
        let l = self.channel.len();
        let n_states = self.states();
        // State encodes the previous L-1 symbols: bit j = symbol (k-1-j),
        // 1 = +1, 0 = -1.
        let sym = |bit: usize| if bit != 0 { 1.0 } else { -1.0 };

        // Precompute the noiseless output for (state, input).
        let mut expected = vec![Complex::ZERO; n_states * 2];
        for s in 0..n_states {
            for inp in 0..2usize {
                let mut acc = self.channel[0] * sym(inp);
                for j in 1..l {
                    let bit = (s >> (j - 1)) & 1;
                    acc += self.channel[j] * sym(bit);
                }
                expected[s * 2 + inp] = acc;
            }
        }

        const INF: f64 = f64::INFINITY;
        let mut metric = vec![INF; n_states];
        metric[0] = 0.0; // all -1 history
        let mut decisions: Vec<Vec<u16>> = Vec::with_capacity(received.len());

        for &z in received {
            let mut next = vec![INF; n_states];
            let mut dec = vec![0u16; n_states];
            for s in 0..n_states {
                if metric[s] == INF {
                    continue;
                }
                for inp in 0..2usize {
                    let e = expected[s * 2 + inp];
                    let d = (z - e).norm_sqr();
                    let ns = ((s << 1) | inp) & (n_states - 1);
                    let cand = metric[s] + d;
                    if cand < next[ns] {
                        next[ns] = cand;
                        dec[ns] = (s as u16) << 1 | inp as u16;
                    }
                }
            }
            metric = next;
            decisions.push(dec);
        }

        // Traceback starts from the best final state.
        let best = (0..n_states)
            .min_by(|&a, &b| metric[a].total_cmp(&metric[b]))
            .unwrap_or(0);
        (decisions, best)
    }

    /// Reference: symbol-by-symbol threshold detection against the main tap
    /// only (what the receiver does with MLSE disabled).
    pub fn threshold_detect(&self, received: &[Complex]) -> Vec<bool> {
        let h0 = self.channel[0];
        received.iter().map(|&z| (z * h0.conj()).re > 0.0).collect()
    }
}

/// Applies a symbol-spaced channel to a ±1 symbol sequence (test/benchmark
/// helper): `y[k] = Σ_l h[l] s[k−l]` with `s = -1` before the block.
pub fn apply_symbol_channel(symbols: &[bool], channel: &[Complex]) -> Vec<Complex> {
    let l = channel.len();
    (0..symbols.len())
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &h) in channel.iter().enumerate().take(l) {
                let s = if k >= j {
                    if symbols[k - j] {
                        1.0
                    } else {
                        -1.0
                    }
                } else {
                    -1.0 // idle history
                };
                acc += h * s;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::awgn::add_awgn_complex;
    use uwb_sim::Rand;

    fn random_symbols(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Rand::new(seed);
        (0..n).map(|_| rng.bit()).collect()
    }

    fn isi_channel() -> Vec<Complex> {
        vec![
            Complex::new(1.0, 0.0),
            Complex::new(0.6, 0.1),
            Complex::new(-0.3, 0.2),
        ]
    }

    #[test]
    fn clean_isi_recovered_exactly() {
        let h = isi_channel();
        let eq = MlseEqualizer::new(h.clone());
        let symbols = random_symbols(300, 1);
        let rx = apply_symbol_channel(&symbols, &h);
        let decided = eq.equalize(&rx);
        assert_eq!(decided, symbols);
    }

    #[test]
    fn threshold_fails_where_mlse_succeeds() {
        // Strong ISI: threshold detection must do clearly worse.
        let h = isi_channel();
        let eq = MlseEqualizer::new(h.clone());
        let symbols = random_symbols(2000, 2);
        let rx = apply_symbol_channel(&symbols, &h);
        let mut rng = Rand::new(3);
        let noisy = add_awgn_complex(&rx, 0.4, &mut rng);
        let count_err = |decided: &[bool]| {
            decided
                .iter()
                .zip(&symbols)
                .filter(|(a, b)| a != b)
                .count()
        };
        let e_mlse = count_err(&eq.equalize(&noisy));
        let e_thresh = count_err(&eq.threshold_detect(&noisy));
        assert!(
            e_mlse * 3 < e_thresh,
            "mlse {e_mlse} vs threshold {e_thresh}"
        );
    }

    #[test]
    fn single_tap_reduces_to_matched_filter() {
        let h = vec![Complex::new(0.0, 2.0)]; // pure rotation
        let eq = MlseEqualizer::new(h.clone());
        let symbols = random_symbols(100, 4);
        let rx = apply_symbol_channel(&symbols, &h);
        assert_eq!(eq.equalize(&rx), symbols);
        assert_eq!(eq.threshold_detect(&rx), symbols);
        assert_eq!(eq.states(), 1);
    }

    #[test]
    fn noise_performance_degrades_gracefully() {
        let h = isi_channel();
        let eq = MlseEqualizer::new(h.clone());
        let symbols = random_symbols(1000, 5);
        let rx = apply_symbol_channel(&symbols, &h);
        let mut rng = Rand::new(6);
        let low_noise = add_awgn_complex(&rx, 0.05, &mut rng);
        let high_noise = add_awgn_complex(&rx, 0.8, &mut rng);
        let err = |sig: &[Complex]| {
            eq.equalize(sig)
                .iter()
                .zip(&symbols)
                .filter(|(a, b)| a != b)
                .count()
        };
        assert!(err(&low_noise) <= err(&high_noise));
        assert_eq!(err(&rx), 0);
    }

    #[test]
    fn empty_input() {
        let eq = MlseEqualizer::new(vec![Complex::ONE]);
        assert!(eq.equalize(&[]).is_empty());
    }

    #[test]
    fn symbols_into_matches_equalize() {
        let h = isi_channel();
        let eq = MlseEqualizer::new(h.clone());
        let symbols = random_symbols(500, 9);
        let rx = apply_symbol_channel(&symbols, &h);
        let mut rng = Rand::new(10);
        let noisy = add_awgn_complex(&rx, 0.3, &mut rng);
        let bools = eq.equalize(&noisy);
        // Pre-dirtied buffer: must be cleared and rewritten.
        let mut syms = vec![Complex::new(9.0, 9.0); 3];
        eq.equalize_symbols_into(&noisy, &mut syms);
        assert_eq!(syms.len(), bools.len());
        for (z, b) in syms.iter().zip(&bools) {
            assert_eq!(z.re, if *b { 1.0 } else { -1.0 });
            assert_eq!(z.im, 0.0);
        }
        // Empty input clears the buffer.
        eq.equalize_symbols_into(&[], &mut syms);
        assert!(syms.is_empty());
    }

    #[test]
    fn five_tap_channel_works() {
        let h = vec![
            Complex::new(1.0, 0.0),
            Complex::new(0.5, 0.0),
            Complex::new(0.25, 0.1),
            Complex::new(-0.2, 0.0),
            Complex::new(0.1, -0.1),
        ];
        let eq = MlseEqualizer::new(h.clone());
        assert_eq!(eq.states(), 16);
        let symbols = random_symbols(200, 7);
        let rx = apply_symbol_channel(&symbols, &h);
        assert_eq!(eq.equalize(&rx), symbols);
    }

    #[test]
    #[should_panic(expected = "taps")]
    fn empty_channel_panics() {
        MlseEqualizer::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "energy")]
    fn zero_channel_panics() {
        MlseEqualizer::new(vec![Complex::ZERO; 3]);
    }
}
