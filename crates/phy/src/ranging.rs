//! Time-of-arrival estimation and two-way ranging.
//!
//! The paper's abstract promises "high data rates over short distances and
//! precise locationing": the same 500 MHz pulses that carry data resolve
//! multipath at the ~2 ns level, so the leading edge of the channel response
//! timestamps the direct path to sub-metre accuracy. This module implements
//! the standard pipeline: matched filter → strongest peak → leading-edge
//! search (the first path is *not* always the strongest in NLOS) →
//! parabolic sub-sample refinement → two-way-ranging distance solve.

use uwb_dsp::correlation::cross_correlate_fft;
use uwb_dsp::Complex;
use uwb_sim::pathloss::SPEED_OF_LIGHT;
use uwb_sim::time::SampleRate;

/// A time-of-arrival estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToaEstimate {
    /// Arrival time in (fractional) samples from the start of the record.
    pub samples: f64,
    /// Arrival time in nanoseconds.
    pub ns: f64,
    /// Magnitude of the matched-filter output at the detected leading edge.
    pub edge_magnitude: f64,
    /// Magnitude at the strongest path (≥ `edge_magnitude`).
    pub peak_magnitude: f64,
}

/// Leading-edge TOA estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToaEstimator {
    /// A path is accepted as the leading edge when its matched-filter
    /// magnitude exceeds `edge_fraction` of the strongest path's.
    pub edge_fraction: f64,
    /// How far before the strongest path to search for earlier arrivals,
    /// in samples.
    pub search_back: usize,
}

impl ToaEstimator {
    /// Default estimator: 25 % edge threshold, 60-sample (60 ns at 1 GS/s)
    /// search-back window.
    pub fn new() -> Self {
        ToaEstimator {
            edge_fraction: 0.25,
            search_back: 60,
        }
    }

    /// Estimates the TOA of `template` within `signal`.
    ///
    /// Returns `None` if the record is shorter than the template or contains
    /// no energy.
    pub fn estimate(
        &self,
        signal: &[Complex],
        template: &[Complex],
        fs: SampleRate,
    ) -> Option<ToaEstimate> {
        if signal.len() < template.len() || template.is_empty() {
            return None;
        }
        let corr = cross_correlate_fft(signal, template);
        let mags: Vec<f64> = corr.iter().map(|z| z.norm()).collect();
        let peak_idx = uwb_dsp::math::argmax(&mags)?;
        let peak = mags[peak_idx];
        if peak <= 0.0 {
            return None;
        }
        // Leading edge: earliest local maximum above the threshold within
        // the search-back window.
        let lo = peak_idx.saturating_sub(self.search_back);
        let threshold = self.edge_fraction * peak;
        let mut edge_idx = peak_idx;
        for i in lo..peak_idx {
            let is_local_max = mags[i] >= threshold
                && (i == 0 || mags[i] >= mags[i - 1])
                && mags[i] >= mags[i + 1];
            if is_local_max {
                edge_idx = i;
                break;
            }
        }
        // Parabolic sub-sample refinement around the edge.
        let frac = if edge_idx > 0 && edge_idx + 1 < mags.len() {
            let (a, b, c) = (mags[edge_idx - 1], mags[edge_idx], mags[edge_idx + 1]);
            let denom = a - 2.0 * b + c;
            if denom.abs() > 1e-12 {
                (0.5 * (a - c) / denom).clamp(-0.5, 0.5)
            } else {
                0.0
            }
        } else {
            0.0
        };
        let samples = edge_idx as f64 + frac;
        Some(ToaEstimate {
            samples,
            ns: samples / fs.as_hz() * 1e9,
            edge_magnitude: mags[edge_idx],
            peak_magnitude: peak,
        })
    }
}

impl Default for ToaEstimator {
    fn default() -> Self {
        ToaEstimator::new()
    }
}

/// The result of a two-way ranging exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangingResult {
    /// Estimated one-way distance in metres.
    pub distance_m: f64,
    /// Round-trip time of flight in nanoseconds (turnaround removed).
    pub round_trip_ns: f64,
}

/// Solves a symmetric two-way ranging exchange: device A timestamps its
/// transmit at `t_tx_ns` and the reply's arrival at `t_rx_ns`; device B's
/// known turnaround is `turnaround_ns`. Distance is
/// `c · (t_rx − t_tx − turnaround) / 2`.
///
/// A negative time-of-flight (possible under noise) clamps to zero distance.
pub fn solve_two_way(t_tx_ns: f64, t_rx_ns: f64, turnaround_ns: f64) -> RangingResult {
    let round_trip_ns = (t_rx_ns - t_tx_ns - turnaround_ns).max(0.0);
    RangingResult {
        distance_m: SPEED_OF_LIGHT * round_trip_ns * 1e-9 / 2.0,
        round_trip_ns,
    }
}

/// Distance corresponding to a one-way propagation delay.
pub fn delay_to_distance_m(delay_ns: f64) -> f64 {
    SPEED_OF_LIGHT * delay_ns * 1e-9
}

/// One-way delay for a distance.
pub fn distance_to_delay_ns(distance_m: f64) -> f64 {
    distance_m / SPEED_OF_LIGHT * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::PulseShape;
    use uwb_dsp::resample::fractional_delay;
    use uwb_sim::awgn::add_awgn_complex;
    use uwb_sim::Rand;

    fn fs() -> SampleRate {
        SampleRate::from_gsps(1.0)
    }

    fn template() -> Vec<Complex> {
        PulseShape::gen2_default().generate_complex(fs())
    }

    fn delayed_pulse(delay: f64) -> Vec<Complex> {
        let tpl = template();
        let mut sig = vec![Complex::ZERO; 100];
        sig.extend_from_slice(&tpl);
        sig.extend(vec![Complex::ZERO; 100]);
        fractional_delay(&sig, delay, 8)
    }

    #[test]
    fn clean_toa_is_exact() {
        let est = ToaEstimator::new();
        let tpl = template();
        for &d in &[0.0, 0.3, 7.6, -2.4] {
            let sig = delayed_pulse(d);
            let toa = est.estimate(&sig, &tpl, fs()).unwrap();
            let expect = 100.0 + d;
            assert!(
                (toa.samples - expect).abs() < 0.05,
                "delay {d}: {} vs {expect}",
                toa.samples
            );
        }
    }

    #[test]
    fn noisy_toa_within_a_sample() {
        let est = ToaEstimator::new();
        let tpl = template();
        let mut rng = Rand::new(2);
        let sig = delayed_pulse(4.5);
        // Pulse energy 1, noise power 0.01 per sample: ~20 dB matched SNR.
        let noisy = add_awgn_complex(&sig, 0.01, &mut rng);
        let toa = est.estimate(&noisy, &tpl, fs()).unwrap();
        assert!((toa.samples - 104.5).abs() < 1.0, "{}", toa.samples);
    }

    #[test]
    fn leading_edge_beats_strongest_path() {
        // NLOS-like: direct path at 100 with amplitude 0.4, echo at 112 with
        // amplitude 1.0. Peak picking alone would report the echo.
        let tpl = template();
        let mut sig = vec![Complex::ZERO; 160 + tpl.len()];
        for (j, &t) in tpl.iter().enumerate() {
            sig[100 + j] += t * 0.4;
            sig[112 + j] += t * 1.0;
        }
        let est = ToaEstimator::new();
        let toa = est.estimate(&sig, &tpl, fs()).unwrap();
        assert!(
            (toa.samples - 100.0).abs() < 0.5,
            "leading edge missed: {}",
            toa.samples
        );
        assert!(toa.edge_magnitude < toa.peak_magnitude);
    }

    #[test]
    fn weak_precursor_below_threshold_ignored() {
        // A 10% precursor is below the 25% edge threshold: should not fire.
        let tpl = template();
        let mut sig = vec![Complex::ZERO; 160 + tpl.len()];
        for (j, &t) in tpl.iter().enumerate() {
            sig[95 + j] += t * 0.1;
            sig[110 + j] += t * 1.0;
        }
        let toa = ToaEstimator::new().estimate(&sig, &tpl, fs()).unwrap();
        assert!((toa.samples - 110.0).abs() < 0.5, "{}", toa.samples);
    }

    #[test]
    fn two_way_solve() {
        // 3 m -> 10.0069 ns one way, 20.014 ns round trip.
        let tof = distance_to_delay_ns(3.0);
        let r = solve_two_way(1000.0, 1000.0 + 2.0 * tof + 500.0, 500.0);
        assert!((r.distance_m - 3.0).abs() < 1e-9, "{}", r.distance_m);
        // Negative clamps.
        let neg = solve_two_way(1000.0, 1000.0, 500.0);
        assert_eq!(neg.distance_m, 0.0);
    }

    #[test]
    fn distance_delay_round_trip() {
        for &d in &[0.1, 1.0, 10.0] {
            assert!((delay_to_distance_m(distance_to_delay_ns(d)) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let est = ToaEstimator::new();
        assert!(est.estimate(&[], &template(), fs()).is_none());
        assert!(est
            .estimate(&[Complex::ZERO; 10], &template(), fs())
            .is_none());
        let zeros = vec![Complex::ZERO; 500];
        assert!(est.estimate(&zeros, &template(), fs()).is_none());
    }
}
