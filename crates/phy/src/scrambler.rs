//! Data whitening (scrambling).
//!
//! Payload bits are XORed with a self-synchronizing PN stream so the radiated
//! spectrum stays noise-like regardless of payload content — important under
//! a PSD-limited regulation like the FCC UWB mask, where repetitive data
//! would concentrate power into spectral lines.

/// A multiplicative scrambler `x^15 + x^14 + 1` (the classic 802-family
/// side-stream scrambler), used here as a synchronous (additive) whitener so
/// that one bit error does not multiply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scrambler {
    state: u16,
    seed: u16,
}

impl Scrambler {
    /// Creates a scrambler with the given 15-bit seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero (the LFSR would lock up) or uses more than
    /// 15 bits.
    pub fn new(seed: u16) -> Self {
        assert!(seed != 0, "scrambler seed must be non-zero");
        assert!(seed < (1 << 15), "scrambler seed must fit 15 bits");
        Scrambler { state: seed, seed }
    }

    /// The default seed used by the packet format.
    pub fn default_seed() -> u16 {
        0x6959
    }

    fn next_bit(&mut self) -> bool {
        // x^15 + x^14 + 1: feedback = s14 ^ s13 (0-indexed).
        let fb = ((self.state >> 14) ^ (self.state >> 13)) & 1;
        self.state = ((self.state << 1) | fb) & 0x7FFF;
        fb != 0
    }

    /// Re-arms the scrambler to its seed (start of each packet).
    pub fn reset(&mut self) {
        self.state = self.seed;
    }

    /// Scrambles (or descrambles — the operation is an involution) a bit
    /// slice in place.
    pub fn apply_bits(&mut self, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            *b ^= self.next_bit();
        }
    }

    /// Scrambles bytes in place (MSB-first bit order).
    pub fn apply_bytes(&mut self, bytes: &mut [u8]) {
        for byte in bytes.iter_mut() {
            let mut mask = 0u8;
            for bit in (0..8).rev() {
                if self.next_bit() {
                    mask |= 1 << bit;
                }
            }
            *byte ^= mask;
        }
    }
}

impl Default for Scrambler {
    fn default() -> Self {
        Scrambler::new(Scrambler::default_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution_round_trip() {
        let mut tx = Scrambler::default();
        let mut rx = Scrambler::default();
        let original: Vec<u8> = (0..=255).collect();
        let mut data = original.clone();
        tx.apply_bytes(&mut data);
        assert_ne!(data, original, "scrambler did nothing");
        rx.apply_bytes(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn bit_and_byte_paths_agree() {
        let mut a = Scrambler::new(0x1ABC);
        let mut b = Scrambler::new(0x1ABC);
        let mut bytes = [0u8; 4];
        a.apply_bytes(&mut bytes);
        let mut bits = [false; 32];
        b.apply_bits(&mut bits);
        for (i, &bit) in bits.iter().enumerate() {
            let byte_bit = bytes[i / 8] >> (7 - i % 8) & 1 != 0;
            assert_eq!(bit, byte_bit, "bit {i}");
        }
    }

    #[test]
    fn whitens_constant_data() {
        // All-zero payload becomes balanced after scrambling.
        let mut s = Scrambler::default();
        let mut data = vec![0u8; 1024];
        s.apply_bytes(&mut data);
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        let total = 1024 * 8;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.05, "ones fraction {frac}");
    }

    #[test]
    fn reset_rearms() {
        let mut s = Scrambler::default();
        let mut d1 = vec![0xAAu8; 16];
        s.apply_bytes(&mut d1);
        s.reset();
        let mut d2 = vec![0xAAu8; 16];
        s.apply_bytes(&mut d2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Scrambler::new(1);
        let mut b = Scrambler::new(2);
        let mut da = vec![0u8; 16];
        let mut db = vec![0u8; 16];
        a.apply_bytes(&mut da);
        b.apply_bytes(&mut db);
        assert_ne!(da, db);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_panics() {
        Scrambler::new(0);
    }
}
