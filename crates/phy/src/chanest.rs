//! Channel impulse-response estimation from the preamble.
//!
//! Paper §3: "the channel impulse response is estimated with a precision of
//! up to four bits during the packet preamble. This information is used in a
//! RAKE receiver and in a Viterbi demodulator." The estimator correlates the
//! known preamble template at successive delays (exploiting the m-sequence's
//! near-ideal autocorrelation) and averages over preamble repeats; the
//! result is quantized to the configured precision before the RAKE/MLSE use
//! it — reproducing the hardware's fixed-point datapath.

use uwb_dsp::Complex;

/// An estimated channel impulse response at sample resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelEstimate {
    taps: Vec<Complex>,
}

impl ChannelEstimate {
    /// Wraps raw taps as an estimate.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<Complex>) -> Self {
        assert!(!taps.is_empty(), "estimate needs at least one tap");
        ChannelEstimate { taps }
    }

    /// The tap array (delay = index, in samples).
    pub fn taps(&self) -> &[Complex] {
        &self.taps
    }

    /// Number of taps (the estimation window length).
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Always `false`: construction requires at least one tap.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total estimated energy.
    pub fn energy(&self) -> f64 {
        self.taps.iter().map(|z| z.norm_sqr()).sum()
    }

    /// The `n` strongest taps as `(delay_samples, gain)`, strongest first.
    pub fn strongest_fingers(&self, n: usize) -> Vec<(usize, Complex)> {
        let mut idx = Vec::new();
        self.select_strongest_into(n, &mut idx);
        idx.into_iter().map(|i| (i, self.taps[i])).collect()
    }

    /// Indices of the `n` strongest taps, strongest first, written into the
    /// caller-owned `idx` buffer (allocation-free once its capacity
    /// suffices).
    ///
    /// Uses an unstable sort with an explicit `(descending energy, ascending
    /// index)` key, which reproduces exactly the order the stable sort in the
    /// historical `strongest_fingers` produced — ties on energy are common
    /// once taps are quantized to a few bits, so the tie-break matters for
    /// bit-identical finger selection.
    pub fn select_strongest_into(&self, n: usize, idx: &mut Vec<usize>) {
        idx.clear();
        idx.extend(0..self.taps.len());
        idx.sort_unstable_by(|&a, &b| {
            self.taps[b]
                .norm_sqr()
                .total_cmp(&self.taps[a].norm_sqr())
                .then(a.cmp(&b))
        });
        idx.truncate(n);
    }

    /// Quantizes each tap's I and Q to `bits` (mid-rise, full scale set by
    /// the largest component) — the paper's "precision of up to four bits".
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn quantized(&self, bits: u32) -> ChannelEstimate {
        let mut q = self.clone();
        q.quantize_in_place(bits);
        q
    }

    /// [`ChannelEstimate::quantized`] mutating the estimate in place —
    /// identical values, zero allocation (the per-trial form).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn quantize_in_place(&mut self, bits: u32) {
        assert!((1..=16).contains(&bits), "bits must be 1..=16");
        let full_scale = self
            .taps
            .iter()
            .fold(0.0f64, |m, z| m.max(z.re.abs()).max(z.im.abs()));
        if full_scale == 0.0 {
            return;
        }
        let levels = (1u32 << bits) as f64;
        let step = 2.0 * full_scale / levels;
        let q = |x: f64| {
            let k = (x / step).floor().clamp(-levels / 2.0, levels / 2.0 - 1.0);
            (k + 0.5) * step
        };
        for z in &mut self.taps {
            *z = Complex::new(q(z.re), q(z.im));
        }
    }

    /// Normalized mean-square error versus a reference estimate.
    pub fn nmse(&self, reference: &ChannelEstimate) -> f64 {
        let n = self.taps.len().min(reference.taps.len());
        let err: f64 = (0..n)
            .map(|i| (self.taps[i] - reference.taps[i]).norm_sqr())
            .sum();
        let e = reference.energy();
        if e > 0.0 {
            err / e
        } else {
            0.0
        }
    }

    /// Collapses the sample-spaced CIR to a symbol-spaced channel for the
    /// MLSE: tap `k` sums the energy-weighted response in
    /// `[k·sps, (k+1)·sps)` by matched-filter combining (coherent sum).
    pub fn to_symbol_spaced(&self, samples_per_symbol: usize, n_taps: usize) -> Vec<Complex> {
        (0..n_taps)
            .map(|k| {
                let lo = k * samples_per_symbol;
                let hi = ((k + 1) * samples_per_symbol).min(self.taps.len());
                if lo >= self.taps.len() {
                    return Complex::ZERO;
                }
                self.taps[lo..hi].iter().copied().sum()
            })
            .collect()
    }
}

/// Estimates the CIR by correlating the known one-period preamble
/// `template` against `signal` at delays `0..window` relative to `start`,
/// averaging over `periods` repeats spaced `period_len` samples apart.
///
/// The template must have unit energy per period for calibrated tap gains
/// (the estimator normalizes by the template energy it measures).
///
/// # Panics
///
/// Panics if `window == 0`, `periods == 0`, or the template is empty.
pub fn estimate_cir(
    signal: &[Complex],
    template: &[Complex],
    start: usize,
    window: usize,
    periods: usize,
    period_len: usize,
) -> ChannelEstimate {
    let mut est = ChannelEstimate {
        taps: vec![Complex::ZERO; window.max(1)],
    };
    estimate_cir_into(signal, template, start, window, periods, period_len, &mut est);
    est
}

/// [`estimate_cir`] writing into a caller-owned [`ChannelEstimate`]
/// (allocation-free once the tap buffer capacity suffices) — the per-trial
/// form used by the Gen2 receiver.
///
/// A real-valued template (every `im == 0`, as the pulse-shaped preamble
/// template always is) takes a two-multiply inner loop instead of the
/// four-multiply complex one; the only representational difference is the
/// sign of exact zeros, so results are numerically identical.
///
/// # Panics
///
/// Panics if `window == 0`, `periods == 0`, or the template is empty.
#[allow(clippy::too_many_arguments)]
pub fn estimate_cir_into(
    signal: &[Complex],
    template: &[Complex],
    start: usize,
    window: usize,
    periods: usize,
    period_len: usize,
    est: &mut ChannelEstimate,
) {
    assert!(window > 0, "window must be positive");
    assert!(periods > 0, "need at least one period");
    assert!(!template.is_empty(), "template must be non-empty");
    let tpl_energy: f64 = template.iter().map(|z| z.norm_sqr()).sum();
    let real_template = template.iter().all(|t| t.im == 0.0);
    let taps = &mut est.taps;
    taps.clear();
    taps.resize(window, Complex::ZERO);
    let mut used_periods = 0usize;
    for p in 0..periods {
        let base = start + p * period_len;
        if base + template.len() + window > signal.len() + 1 {
            break;
        }
        used_periods += 1;
        // The break above guarantees base + d + j <= base + (window-1) +
        // (len-1) <= signal.len() - 1 for every delay/sample pair, so each
        // delay's window is a plain in-bounds slice — no per-sample bounds
        // test in the inner loop.
        for (d, tap) in taps.iter_mut().enumerate() {
            let win = &signal[base + d..base + d + template.len()];
            let acc = if real_template {
                // s · conj(t) with t purely real: 2 real MACs per sample,
                // lane-split so the reduction autovectorizes.
                uwb_dsp::simd::dot_real_template(win, template)
            } else {
                let mut acc = Complex::ZERO;
                for (&s, &t) in win.iter().zip(template) {
                    acc += s * t.conj();
                }
                acc
            };
            *tap += acc;
        }
    }
    let scale = 1.0 / (used_periods.max(1) as f64 * tpl_energy);
    for tap in taps.iter_mut() {
        *tap = *tap * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::fft::fft_convolve;
    use uwb_sim::awgn::add_awgn_complex;
    use uwb_sim::Rand;

    fn chip_template() -> Vec<Complex> {
        let chips = crate::pn::msequence_chips(7);
        // Unit energy: scale by 1/sqrt(127).
        let k = 1.0 / (127.0f64).sqrt();
        chips.iter().map(|&c| Complex::new(c * k, 0.0)).collect()
    }

    fn through_channel(template: &[Complex], h: &[Complex], periods: usize) -> Vec<Complex> {
        let mut sig = Vec::new();
        for _ in 0..periods {
            sig.extend_from_slice(template);
        }
        let mut out = fft_convolve(&sig, h);
        out.extend(vec![Complex::ZERO; 32]);
        out
    }

    #[test]
    fn recovers_two_tap_channel() {
        let tpl = chip_template();
        let h = {
            let mut h = vec![Complex::ZERO; 8];
            h[0] = Complex::new(0.9, 0.0);
            h[5] = Complex::new(0.0, -0.4);
            h
        };
        let rx = through_channel(&tpl, &h, 4);
        let est = estimate_cir(&rx, &tpl, 0, 8, 4, tpl.len());
        assert!((est.taps()[0] - h[0]).norm() < 0.05, "{:?}", est.taps()[0]);
        assert!((est.taps()[5] - h[5]).norm() < 0.05, "{:?}", est.taps()[5]);
        for d in [1usize, 2, 3, 4, 6, 7] {
            assert!(est.taps()[d].norm() < 0.1, "ghost tap at {d}");
        }
    }

    #[test]
    fn averaging_suppresses_noise() {
        let tpl = chip_template();
        let mut h = vec![Complex::ZERO; 4];
        h[0] = Complex::ONE;
        let clean = through_channel(&tpl, &h, 8);
        let mut rng = Rand::new(1);
        let noisy = add_awgn_complex(&clean, 0.5, &mut rng);
        let est1 = estimate_cir(&noisy, &tpl, 0, 4, 1, tpl.len());
        let est8 = estimate_cir(&noisy, &tpl, 0, 4, 8, tpl.len());
        let ref_est = ChannelEstimate::new(h);
        assert!(
            est8.nmse(&ref_est) < est1.nmse(&ref_est),
            "8-period NMSE {} vs 1-period {}",
            est8.nmse(&ref_est),
            est1.nmse(&ref_est)
        );
    }

    #[test]
    fn strongest_fingers_sorted() {
        let est = ChannelEstimate::new(vec![
            Complex::new(0.1, 0.0),
            Complex::new(0.9, 0.0),
            Complex::new(0.0, 0.5),
            Complex::new(0.05, 0.0),
        ]);
        let fingers = est.strongest_fingers(2);
        assert_eq!(fingers.len(), 2);
        assert_eq!(fingers[0].0, 1);
        assert_eq!(fingers[1].0, 2);
        // Requesting more than available returns all.
        assert_eq!(est.strongest_fingers(99).len(), 4);
    }

    #[test]
    fn quantization_error_shrinks_with_bits() {
        let mut rng = Rand::new(2);
        let taps: Vec<Complex> = (0..32)
            .map(|_| Complex::new(rng.gaussian(), rng.gaussian()))
            .collect();
        let est = ChannelEstimate::new(taps);
        let mut prev = f64::INFINITY;
        for bits in [1u32, 2, 3, 4, 6, 8] {
            let q = est.quantized(bits);
            let nmse = q.nmse(&est);
            assert!(nmse < prev, "bits {bits}: {nmse} !< {prev}");
            prev = nmse;
        }
        // 4 bits should already be quite accurate (paper's design point).
        assert!(est.quantized(4).nmse(&est) < 0.02);
    }

    #[test]
    fn quantized_zero_estimate_unchanged() {
        let est = ChannelEstimate::new(vec![Complex::ZERO; 4]);
        assert_eq!(est.quantized(4), est);
    }

    #[test]
    fn symbol_spaced_collapse() {
        let mut taps = vec![Complex::ZERO; 20];
        taps[0] = Complex::ONE;
        taps[3] = Complex::new(0.5, 0.0);
        taps[12] = Complex::new(0.0, 0.25);
        let est = ChannelEstimate::new(taps);
        let sym = est.to_symbol_spaced(10, 3);
        assert_eq!(sym.len(), 3);
        assert!((sym[0] - Complex::new(1.5, 0.0)).norm() < 1e-12);
        assert!((sym[1] - Complex::new(0.0, 0.25)).norm() < 1e-12);
        assert_eq!(sym[2], Complex::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_estimate_panics() {
        ChannelEstimate::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn bad_bits_panics() {
        ChannelEstimate::new(vec![Complex::ONE]).quantized(0);
    }
}
