//! Parallelized correlator bank.
//!
//! Paper §1: "The back end requires parallelization to reduce the packet
//! synchronization time and to process the large data rate provided by the
//! ADC." In hardware, `P` correlators evaluate `P` candidate code phases per
//! clock; this model computes the same outputs and *accounts for the clock
//! cycles and multiply-accumulate operations* so acquisition-time and power
//! numbers can be derived from it.

use std::cell::RefCell;

use uwb_dsp::fft::cached_plan;
use uwb_dsp::fft32::cached_plan32;
use uwb_dsp::math::next_pow2;
use uwb_dsp::{Complex, DspScratch};

/// Forward FFT of the zero-padded, conjugated, time-reversed template,
/// memoized per FFT size so repeated acquisition sweeps pay for the template
/// transform once instead of every call.
#[derive(Debug, Clone)]
struct TplSpectrum {
    n: usize,
    spec: Vec<Complex>,
}

/// Single-precision sibling of [`TplSpectrum`] for the `fast-acq` path:
/// the same matched-template spectrum in split f32 lanes.
#[derive(Debug, Clone)]
struct TplSpectrum32 {
    n: usize,
    re: Vec<f32>,
    im: Vec<f32>,
}

/// Operation accounting for a correlator-bank run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorrelatorStats {
    /// Candidate phases evaluated.
    pub phases_evaluated: usize,
    /// Hardware clock cycles consumed (`ceil(phases / parallelism)` dwells,
    /// each lasting one template length of clocks).
    pub clock_cycles: u64,
    /// Real multiply-accumulate operations performed.
    pub mac_ops: u64,
}

/// A bank of `parallelism` correlators sharing one template.
///
/// The bank memoizes the FFT of its matched template per transform size (a
/// `RefCell`, so the bank is `!Sync`; the Monte-Carlo engine builds one bank
/// per worker thread, which is the intended sharing model).
#[derive(Debug, Clone)]
pub struct CorrelatorBank {
    template: Vec<Complex>,
    parallelism: usize,
    /// Lazily built matched-template spectrum (see [`TplSpectrum`]).
    tpl_spectrum: RefCell<Option<TplSpectrum>>,
    /// f32 twin of `tpl_spectrum`, used by the `fast-acq` path.
    tpl_spectrum32: RefCell<Option<TplSpectrum32>>,
}

impl CorrelatorBank {
    /// Creates a bank with the given template and hardware parallelism.
    ///
    /// # Panics
    ///
    /// Panics if the template is empty or `parallelism == 0`.
    pub fn new(template: Vec<Complex>, parallelism: usize) -> Self {
        assert!(!template.is_empty(), "correlator template must be non-empty");
        assert!(parallelism > 0, "parallelism must be at least 1");
        CorrelatorBank {
            template,
            parallelism,
            tpl_spectrum: RefCell::new(None),
            tpl_spectrum32: RefCell::new(None),
        }
    }

    /// The template length in samples.
    pub fn template_len(&self) -> usize {
        self.template.len()
    }

    /// The correlation template.
    pub fn template(&self) -> &[Complex] {
        &self.template
    }

    /// The number of parallel correlators.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Correlates `signal` against the template at every phase in
    /// `phases` (sample offsets into `signal`). Offsets whose window would
    /// run past the end yield zero.
    ///
    /// Returns per-phase complex outputs plus the hardware cost.
    pub fn run(&self, signal: &[Complex], phases: &[usize]) -> (Vec<Complex>, CorrelatorStats) {
        let m = self.template.len();
        let mut out = Vec::with_capacity(phases.len());
        for &p in phases {
            if p + m > signal.len() {
                out.push(Complex::ZERO);
                continue;
            }
            let mut acc = Complex::ZERO;
            for (j, &t) in self.template.iter().enumerate() {
                acc += signal[p + j] * t.conj();
            }
            out.push(acc);
        }
        let dwells = phases.len().div_ceil(self.parallelism);
        let stats = CorrelatorStats {
            phases_evaluated: phases.len(),
            clock_cycles: dwells as u64 * m as u64,
            // Complex × conj(complex) = 4 real MACs per sample.
            mac_ops: phases.len() as u64 * m as u64 * 4,
        };
        (out, stats)
    }

    /// Correlates the contiguous phase range `0..n_phases`, the access
    /// pattern of a serial acquisition sweep.
    ///
    /// Outputs and hardware accounting are the same as
    /// [`CorrelatorBank::run`] over `(0..n_phases).collect()` — the stats
    /// model the *hardware* correlator bank (dwells, clocks, MACs), which is
    /// independent of how this software model evaluates the outputs. For
    /// large sweeps the contiguous structure lets the model use one FFT
    /// cross-correlation (`O(N log N)`) instead of `O(phases × m)` direct
    /// MACs; results agree with the direct form up to floating-point
    /// rounding.
    pub fn run_prefix(&self, signal: &[Complex], n_phases: usize) -> (Vec<Complex>, CorrelatorStats) {
        let mut scratch = DspScratch::new();
        let mut out = Vec::new();
        let stats = self.run_prefix_into(signal, n_phases, &mut scratch, &mut out);
        (out, stats)
    }

    /// [`CorrelatorBank::run_prefix`] computing into caller-owned storage.
    ///
    /// Identical outputs and hardware accounting; FFT work buffers come from
    /// `scratch` and the matched-template spectrum is memoized inside the
    /// bank, so steady-state acquisition sweeps perform zero heap allocation
    /// and one forward + one inverse transform (instead of two forward + one
    /// inverse with a per-call template transform).
    pub fn run_prefix_into(
        &self,
        signal: &[Complex],
        n_phases: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<Complex>,
    ) -> CorrelatorStats {
        let m = self.template.len();
        let use_fft = m > 1 && n_phases.saturating_mul(m) >= Self::FFT_THRESHOLD_MACS;
        out.clear();
        if !use_fft {
            out.reserve(n_phases);
            for p in 0..n_phases {
                if p + m > signal.len() {
                    out.push(Complex::ZERO);
                    continue;
                }
                let mut acc = Complex::ZERO;
                for (j, &t) in self.template.iter().enumerate() {
                    acc += signal[p + j] * t.conj();
                }
                out.push(acc);
            }
        } else if cfg!(feature = "fast-acq") {
            self.correlate_prefix_fft32(signal, n_phases, scratch, out);
        } else {
            self.correlate_prefix_fft(signal, n_phases, scratch, out);
        }
        let dwells = n_phases.div_ceil(self.parallelism);
        CorrelatorStats {
            phases_evaluated: n_phases,
            clock_cycles: dwells as u64 * m as u64,
            mac_ops: n_phases as u64 * m as u64 * 4,
        }
    }

    /// Below this work estimate the direct form wins (and stays exactly
    /// bit-identical to `run`, which small unit tests rely on).
    const FFT_THRESHOLD_MACS: usize = 1 << 15;

    /// Pre-builds the memoized matched-template spectrum for the prefix
    /// sweep [`CorrelatorBank::run_prefix_into`] would run over a signal of
    /// `signal_len` samples and `n_phases` candidate phases — a no-op when
    /// that sweep would take the direct (non-FFT) form or when the spectrum
    /// for the implied transform size is already cached. The batched
    /// acquisition sweep calls this once per batch so no lane pays the
    /// template FFT inside its timed search; results are identical either
    /// way (the memo would otherwise be built lazily on first use).
    pub fn warm_prefix(&self, signal_len: usize, n_phases: usize) {
        let m = self.template.len();
        if !(m > 1 && n_phases.saturating_mul(m) >= Self::FFT_THRESHOLD_MACS) {
            return;
        }
        let needed = (n_phases + m - 1).min(signal_len);
        if needed < m {
            return;
        }
        let n = next_pow2(needed + m - 1);
        if cfg!(feature = "fast-acq") {
            self.ensure_spectrum32(n);
        } else {
            self.ensure_spectrum(n);
        }
    }

    /// (Re)builds the cached f64 template spectrum for transform size `n`.
    fn ensure_spectrum(&self, n: usize) {
        let mut cache = self.tpl_spectrum.borrow_mut();
        if cache.as_ref().is_none_or(|c| c.n != n) {
            let fft = cached_plan(n);
            let mut spec = vec![Complex::ZERO; n];
            for (o, t) in spec.iter_mut().zip(self.template.iter().rev()) {
                *o = t.conj();
            }
            fft.forward_in_place(&mut spec);
            *cache = Some(TplSpectrum { n, spec });
        }
    }

    /// (Re)builds the cached f32 template spectrum for transform size `n`,
    /// with the inverse transform's 1/N folded in (see
    /// [`CorrelatorBank::correlate_prefix_fft32`]).
    fn ensure_spectrum32(&self, n: usize) {
        let mut cache = self.tpl_spectrum32.borrow_mut();
        if cache.as_ref().is_none_or(|c| c.n != n) {
            let fft = cached_plan32(n);
            let mut re = vec![0.0f32; n];
            let mut im = vec![0.0f32; n];
            for (i, t) in self.template.iter().rev().enumerate() {
                re[i] = t.re as f32;
                im[i] = -t.im as f32; // conj
            }
            fft.forward_in_place(&mut re, &mut im);
            // Fold the inverse transform's 1/N into the cached spectrum
            // so the hot path can use the unscaled inverse (one fewer
            // pass over the lanes per acquisition).
            let inv_n = 1.0f32 / n as f32;
            for x in re.iter_mut() {
                *x *= inv_n;
            }
            for x in im.iter_mut() {
                *x *= inv_n;
            }
            *cache = Some(TplSpectrum32 { n, re, im });
        }
    }

    /// FFT path of [`CorrelatorBank::run_prefix_into`]: correlate against the
    /// memoized template spectrum, writing `n_phases` outputs (zero-filled
    /// past the last valid lag).
    fn correlate_prefix_fft(
        &self,
        signal: &[Complex],
        n_phases: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<Complex>,
    ) {
        let m = self.template.len();
        // Only the first `n_phases + m - 1` samples are ever touched.
        let needed = (n_phases + m - 1).min(signal.len());
        if needed < m {
            out.resize(n_phases, Complex::ZERO);
            return;
        }
        let n_valid = needed - m + 1;
        let n = next_pow2(needed + m - 1);
        // (Re)build the cached template spectrum when the size changes.
        self.ensure_spectrum(n);
        let cache = self.tpl_spectrum.borrow();
        let spec = &cache
            .as_ref()
            .expect("tpl_spectrum populated above for this size")
            .spec;
        let fft = cached_plan(n);
        let mut fa = scratch.take_complex(n);
        fa[..needed].copy_from_slice(&signal[..needed]);
        fft.forward_in_place(&mut fa);
        for (x, y) in fa.iter_mut().zip(spec) {
            *x *= *y;
        }
        fft.inverse_in_place(&mut fa);
        let take = n_valid.min(n_phases);
        out.reserve(n_phases);
        out.extend_from_slice(&fa[m - 1..m - 1 + take]);
        out.resize(n_phases, Complex::ZERO);
        scratch.put_complex(fa);
    }

    /// `fast-acq` twin of [`CorrelatorBank::correlate_prefix_fft`]: the same
    /// cross-correlation computed through [`uwb_dsp::fft32`] on split f32
    /// lanes. Outputs differ from the f64 path by ~1e-7 relative (see the
    /// `fast_acq` parity tests), which acquisition's threshold test and
    /// argmax absorb; always compiled so the tests can compare both paths.
    fn correlate_prefix_fft32(
        &self,
        signal: &[Complex],
        n_phases: usize,
        scratch: &mut DspScratch,
        out: &mut Vec<Complex>,
    ) {
        let m = self.template.len();
        let needed = (n_phases + m - 1).min(signal.len());
        if needed < m {
            out.resize(n_phases, Complex::ZERO);
            return;
        }
        let n_valid = needed - m + 1;
        let n = next_pow2(needed + m - 1);
        self.ensure_spectrum32(n);
        let cache = self.tpl_spectrum32.borrow();
        let tpl = cache
            .as_ref()
            .expect("tpl_spectrum32 populated above for this size");
        let fft = cached_plan32(n);
        let mut sr = scratch.take_f32(n);
        let mut si = scratch.take_f32(n);
        for (i, z) in signal[..needed].iter().enumerate() {
            sr[i] = z.re as f32;
            si[i] = z.im as f32;
        }
        fft.forward_in_place(&mut sr, &mut si);
        // Pointwise complex product in SoA form.
        for i in 0..n {
            let (ar, ai) = (sr[i], si[i]);
            sr[i] = ar * tpl.re[i] - ai * tpl.im[i];
            si[i] = ar * tpl.im[i] + ai * tpl.re[i];
        }
        fft.inverse_in_place_unscaled(&mut sr, &mut si);
        let take = n_valid.min(n_phases);
        out.reserve(n_phases);
        for i in m - 1..m - 1 + take {
            out.push(Complex::new(sr[i] as f64, si[i] as f64));
        }
        out.resize(n_phases, Complex::ZERO);
        scratch.put_f32(sr);
        scratch.put_f32(si);
    }

    /// Correlates every phase in `0..signal.len() − template_len + 1`
    /// (a full sliding search).
    pub fn run_full(&self, signal: &[Complex]) -> (Vec<Complex>, CorrelatorStats) {
        let n = signal.len().saturating_sub(self.template.len()) + 1;
        self.run_prefix(signal, n)
    }

    /// Time in microseconds the search takes on hardware clocked at
    /// `clock_hz`, given the stats of a run.
    pub fn search_time_us(stats: &CorrelatorStats, clock_hz: f64) -> f64 {
        stats.clock_cycles as f64 / clock_hz * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::cis(0.2 * i as f64)).collect()
    }

    #[test]
    fn outputs_match_direct_correlation() {
        let tpl = template(16);
        let mut sig = vec![Complex::ZERO; 100];
        for (i, &t) in tpl.iter().enumerate() {
            sig[40 + i] = t;
        }
        let bank = CorrelatorBank::new(tpl.clone(), 4);
        let (out, _) = bank.run_full(&sig);
        let direct = uwb_dsp::correlation::cross_correlate(&sig, &tpl);
        assert_eq!(out.len(), direct.len());
        for (a, b) in out.iter().zip(&direct) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn peak_found_at_embedded_phase() {
        let tpl = template(32);
        let mut sig = vec![Complex::ZERO; 300];
        for (i, &t) in tpl.iter().enumerate() {
            sig[123 + i] = t;
        }
        let bank = CorrelatorBank::new(tpl, 8);
        let (out, _) = bank.run_full(&sig);
        let mags: Vec<f64> = out.iter().map(|z| z.norm()).collect();
        assert_eq!(uwb_dsp::math::argmax(&mags), Some(123));
    }

    #[test]
    fn clock_cycles_scale_inversely_with_parallelism() {
        let tpl = template(64);
        let sig = vec![Complex::ONE; 1000];
        let phases: Vec<usize> = (0..512).collect();
        let serial = CorrelatorBank::new(tpl.clone(), 1);
        let parallel = CorrelatorBank::new(tpl, 32);
        let (_, s1) = serial.run(&sig, &phases);
        let (_, s32) = parallel.run(&sig, &phases);
        assert_eq!(s1.clock_cycles, 512 * 64);
        assert_eq!(s32.clock_cycles, 16 * 64);
        assert_eq!(s1.clock_cycles / s32.clock_cycles, 32);
        // Total MAC work is the same — parallel hardware, same energy.
        assert_eq!(s1.mac_ops, s32.mac_ops);
    }

    #[test]
    fn run_prefix_fft_path_matches_direct() {
        // 512 phases × 128-tap template clears FFT_THRESHOLD_MACS.
        let tpl = template(128);
        let mut sig: Vec<Complex> = (0..800)
            .map(|i| Complex::cis(0.37 * i as f64) * (0.2 + 0.01 * (i % 17) as f64))
            .collect();
        for (i, &t) in tpl.iter().enumerate() {
            sig[333 + i] += t;
        }
        let bank = CorrelatorBank::new(tpl, 8);
        let n_phases = 512;
        let (fast, s_fast) = bank.run_prefix(&sig, n_phases);
        let phases: Vec<usize> = (0..n_phases).collect();
        let (direct, s_direct) = bank.run(&sig, &phases);
        assert_eq!(s_fast, s_direct, "hardware accounting must not change");
        assert_eq!(fast.len(), direct.len());
        // With `fast-acq` the FFT runs in f32, so parity with the f64 direct
        // form is relative to the output scale rather than near-exact.
        let scale = direct.iter().map(|z| z.norm()).fold(1.0, f64::max);
        let tol = if cfg!(feature = "fast-acq") {
            1e-5 * scale
        } else {
            1e-7
        };
        for (a, b) in fast.iter().zip(&direct) {
            assert!((*a - *b).norm() < tol, "{a} vs {b}");
        }
    }

    /// `fast-acq` acceptance bound: the f32 FFT path must stay within a
    /// small relative envelope of the f64 FFT path at every phase. The
    /// envelope (10 ppm of the peak magnitude) is ~1000× tighter than the
    /// margin between acquisition's detection threshold and real peaks.
    #[test]
    fn f32_fft_path_is_ulp_bounded_against_f64() {
        let tpl = template(128);
        let mut sig: Vec<Complex> = (0..4096)
            .map(|i| Complex::cis(1.3 * i as f64) * (0.05 + 0.002 * (i % 31) as f64))
            .collect();
        for (i, &t) in tpl.iter().enumerate() {
            sig[1777 + i] += t * 2.0;
        }
        let bank = CorrelatorBank::new(tpl, 8);
        let n_phases = 3000;
        let mut scratch = DspScratch::new();
        let (mut f64_out, mut f32_out) = (Vec::new(), Vec::new());
        bank.correlate_prefix_fft(&sig, n_phases, &mut scratch, &mut f64_out);
        bank.correlate_prefix_fft32(&sig, n_phases, &mut scratch, &mut f32_out);
        assert_eq!(f64_out.len(), f32_out.len());
        let scale = f64_out.iter().map(|z| z.norm()).fold(f64::MIN_POSITIVE, f64::max);
        let mut worst = 0.0f64;
        for (a, b) in f32_out.iter().zip(&f64_out) {
            worst = worst.max((*a - *b).norm());
        }
        assert!(
            worst <= 1e-5 * scale,
            "worst abs deviation {worst} exceeds 1e-5 × peak {scale}"
        );
        // And the argmax — the decision acquisition actually takes — agrees.
        let am = |v: &[Complex]| {
            let mags: Vec<f64> = v.iter().map(|z| z.norm()).collect();
            uwb_dsp::math::argmax(&mags)
        };
        assert_eq!(am(&f32_out), am(&f64_out));
        assert_eq!(am(&f64_out), Some(1777));
    }

    #[test]
    fn run_prefix_handles_short_signal() {
        // n_phases extends past the valid range: tail phases must be zero,
        // on both the direct and FFT paths.
        let tpl = template(64);
        let sig = vec![Complex::ONE; 600];
        let bank = CorrelatorBank::new(tpl, 4);
        let (out, stats) = bank.run_prefix(&sig, 600); // valid lags: 0..=536
        assert_eq!(out.len(), 600);
        assert_eq!(stats.phases_evaluated, 600);
        assert!(out[536].norm() > 0.0);
        for z in &out[537..] {
            assert_eq!(*z, Complex::ZERO);
        }
    }

    #[test]
    fn out_of_range_phase_yields_zero() {
        let tpl = template(10);
        let sig = vec![Complex::ONE; 12];
        let bank = CorrelatorBank::new(tpl, 1);
        let (out, _) = bank.run(&sig, &[0, 2, 5]);
        assert!(out[0].norm() > 0.0);
        assert!(out[1].norm() > 0.0);
        assert_eq!(out[2], Complex::ZERO); // 5 + 10 > 12
    }

    #[test]
    fn search_time_formula() {
        let stats = CorrelatorStats {
            phases_evaluated: 1000,
            clock_cycles: 500_000,
            mac_ops: 0,
        };
        // 500k cycles at 500 MHz = 1000 us.
        let t = CorrelatorBank::search_time_us(&stats, 500e6);
        assert!((t - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_template_panics() {
        CorrelatorBank::new(Vec::new(), 4);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_panics() {
        CorrelatorBank::new(template(4), 0);
    }
}
