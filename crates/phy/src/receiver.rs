//! The second-generation digital back end (paper Fig. 3).
//!
//! Pipeline: AGC → I/Q ADC quantization → pulse matched filter → coarse
//! acquisition (parallel correlator search) → channel estimation (4-bit) →
//! RAKE combining → demodulation → descrambling/FEC/CRC. Each stage is a
//! module in this crate; [`Gen2Receiver`] wires them together.

use crate::acquisition::{AcquisitionConfig, AcquisitionResult, CoarseAcquisition};
use crate::chanest::{estimate_cir_into, ChannelEstimate};
use crate::config::Gen2Config;
use crate::error::PhyError;
use crate::mlse::MlseEqualizer;
use crate::modulation::Modulation;
use crate::packet::{decode_header, decode_payload, header_slot_count, payload_slot_count, Header};
use crate::pulse::PulseShape;
use crate::rake::RakeReceiver;
use crate::tx::Gen2Transmitter;
use uwb_adc::Quantizer;
use uwb_dsp::{Complex, DspScratch};

/// How many samples before the acquisition lock the channel-estimation
/// window starts (captures paths earlier than the strongest one).
pub(crate) const CIR_PRE_SAMPLES: usize = 8;
/// Channel-estimation window length in samples.
pub(crate) const CIR_WINDOW: usize = 64;
/// Start-of-frame-delimiter length in slots (gap between the last preamble
/// repeat and the first header slot).
pub(crate) const SFD_SLOTS: usize = 13;

/// A successfully received packet with per-stage diagnostics.
#[derive(Debug, Clone)]
pub struct ReceivedPacket {
    /// The decoded payload bytes (CRC verified).
    pub payload: Vec<u8>,
    /// The decoded header.
    pub header: Header,
    /// Coarse-acquisition diagnostics.
    pub acquisition: AcquisitionResult,
    /// The (quantized) channel estimate the RAKE used.
    pub estimate: ChannelEstimate,
}

/// Reusable per-worker receive state: every buffer the receive chain needs,
/// owned by the caller so steady-state trials allocate nothing.
///
/// One `RxState` per Monte-Carlo worker (it is deliberately not `Clone`: the
/// scratch pool inside should be long-lived, not copied around). All buffers
/// grow to their high-water mark on the first packet and are reused
/// thereafter.
#[derive(Debug)]
pub struct RxState {
    /// Scratch arena for FFT/correlation work buffers.
    pub(crate) scratch: DspScratch,
    /// AGC + quantizer output record.
    pub(crate) digitized: Vec<Complex>,
    /// Channel estimate (raw, then quantized in place).
    pub(crate) estimate: ChannelEstimate,
    /// RAKE rebuilt in place each packet.
    pub(crate) rake: RakeReceiver,
    /// Finger-selection index scratch.
    pub(crate) finger_idx: Vec<usize>,
    /// Memo: the acquisition offset `estimate` currently corresponds to,
    /// valid for the current contents of `digitized`. Every write to
    /// `digitized` must clear this; `prepare_rake_at` uses it to skip
    /// recomputing a channel estimate it just produced (the estimate is a
    /// pure function of `(digitized, offset)`, so the skip is bit-exact).
    pub(crate) chanest_memo: Option<usize>,
}

impl RxState {
    /// Creates an empty state; buffers size themselves on first use.
    pub fn new() -> Self {
        let estimate = ChannelEstimate::new(vec![Complex::ZERO]);
        let rake = RakeReceiver::from_estimate(
            &ChannelEstimate::new(vec![Complex::ONE]),
            1,
        );
        RxState {
            scratch: DspScratch::new(),
            digitized: Vec::new(),
            estimate,
            rake,
            finger_idx: Vec::new(),
            chanest_memo: None,
        }
    }

    /// The scratch arena, for callers that interleave their own DSP work
    /// (channel application, noise) with receive calls on one pool.
    pub fn scratch(&mut self) -> &mut DspScratch {
        &mut self.scratch
    }
}

impl Default for RxState {
    fn default() -> Self {
        RxState::new()
    }
}

/// The gen2 receiver.
#[derive(Debug, Clone)]
pub struct Gen2Receiver {
    config: Gen2Config,
    pulse: Vec<Complex>,
    preamble_template: Vec<Complex>,
    acquisition: CoarseAcquisition,
    quantizer: Quantizer,
}

impl Gen2Receiver {
    /// Creates a receiver for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: Gen2Config) -> Result<Self, PhyError> {
        config.validate()?;
        let pulse = PulseShape::gen2_default().generate_complex(config.sample_rate);
        // Reuse the transmitter's template construction so both ends agree.
        let tx = Gen2Transmitter::new(config.clone())?;
        let preamble_template = tx.preamble_template();
        let acquisition = CoarseAcquisition::new(
            preamble_template.clone(),
            AcquisitionConfig::with_clock(config.sample_rate.as_hz()),
        );
        let quantizer = Quantizer::new(config.adc_bits, 1.0);
        Ok(Gen2Receiver {
            config,
            pulse,
            preamble_template,
            acquisition,
            quantizer,
        })
    }

    /// The receiver configuration.
    pub fn config(&self) -> &Gen2Config {
        &self.config
    }

    /// Length of one preamble-period template in samples (what acquisition
    /// correlates against).
    pub(crate) fn template_len(&self) -> usize {
        self.preamble_template.len()
    }

    /// Length of the matched-filter pulse template in samples.
    pub(crate) fn pulse_len(&self) -> usize {
        self.pulse.len()
    }

    /// Runs coarse acquisition over `search_len` candidate phases of
    /// `samples`, drawing work buffers from `scratch`.
    pub(crate) fn acquire_into(
        &self,
        samples: &[Complex],
        search_len: usize,
        scratch: &mut DspScratch,
    ) -> AcquisitionResult {
        self.acquisition.acquire_with(samples, search_len, scratch)
    }

    /// Front-end conditioning: AGC to −9 dBFS, then I/Q quantization at the
    /// configured ADC resolution.
    pub fn digitize(&self, samples: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::new();
        self.digitize_into(samples, &mut out);
        out
    }

    /// [`Gen2Receiver::digitize`] into a caller-owned buffer, fusing the
    /// gain and quantization passes (bit-identical output, allocation-free
    /// once the buffer capacity suffices).
    pub fn digitize_into(&self, samples: &[Complex], out: &mut Vec<Complex>) {
        let p = uwb_dsp::simd::mean_power(samples);
        if p <= 0.0 {
            out.clear();
            out.extend_from_slice(samples);
            return;
        }
        let gain = 0.355 / p.sqrt();
        uwb_obs::gauge!("agc_gain_milli").set((gain * 1000.0) as u64);
        uwb_obs::note!("agc_gain_milli", (gain * 1000.0) as u64);
        // Fused scale + mid-rise quantize sweep — bit-identical to scaling
        // and quantizing each rail in turn (see Quantizer parity test).
        self.quantizer.quantize_scaled_into(samples, gain, out);
    }

    /// [`Gen2Receiver::digitize_into`] that *appends* the digitized record
    /// to `out` instead of replacing it — the batched runtime's form, which
    /// digitizes each trial's lane straight into a flat
    /// [`uwb_dsp::batch::BatchArena`] buffer. Per-sample arithmetic, AGC
    /// gain, and telemetry are identical to the replacing form.
    pub fn digitize_append(&self, samples: &[Complex], out: &mut Vec<Complex>) {
        let p = uwb_dsp::simd::mean_power(samples);
        if p <= 0.0 {
            out.extend_from_slice(samples);
            return;
        }
        let gain = 0.355 / p.sqrt();
        uwb_obs::gauge!("agc_gain_milli").set((gain * 1000.0) as u64);
        uwb_obs::note!("agc_gain_milli", (gain * 1000.0) as u64);
        self.quantizer.quantize_scaled_append(samples, gain, out);
    }

    /// Runs the complete receive chain on a complex-baseband record.
    ///
    /// # Errors
    ///
    /// * [`PhyError::SyncFailed`] — acquisition did not clear its threshold.
    /// * [`PhyError::HeaderInvalid`] / [`PhyError::CrcMismatch`] /
    ///   [`PhyError::TruncatedInput`] — decode failures.
    pub fn receive_packet(&self, samples: &[Complex]) -> Result<ReceivedPacket, PhyError> {
        let mut state = RxState::new();
        self.receive_packet_with(samples, &mut state)
    }

    /// [`Gen2Receiver::receive_packet`] drawing every work buffer from a
    /// caller-owned [`RxState`] — identical results, but acquisition FFTs,
    /// the digitized record, channel estimation, and RAKE rebuilds all reuse
    /// the state's storage (the per-trial form used by the Monte-Carlo
    /// engine). Only the returned packet itself is freshly allocated.
    ///
    /// # Errors
    ///
    /// Same as [`Gen2Receiver::receive_packet`].
    pub fn receive_packet_with(
        &self,
        samples: &[Complex],
        state: &mut RxState,
    ) -> Result<ReceivedPacket, PhyError> {
        {
            let _t = uwb_obs::span!("rx_agc_adc");
            self.digitize_into(samples, &mut state.digitized);
            state.chanest_memo = None;
        }
        self.receive_packet_predigitized(state)
    }

    /// [`Gen2Receiver::receive_packet_with`] starting from the record
    /// already digitized into `state.digitized`, skipping the AGC/ADC pass.
    ///
    /// Digitization is a pure function of the input record, so when a
    /// caller has *just* digitized the same samples (e.g. the Monte-Carlo
    /// full trial, whose known-timing BER pass runs first), re-running it
    /// would reproduce `state.digitized` bit-for-bit — this entry point
    /// skips that duplicate work with identical results.
    ///
    /// # Errors
    ///
    /// Same as [`Gen2Receiver::receive_packet`].
    pub fn receive_packet_predigitized(
        &self,
        state: &mut RxState,
    ) -> Result<ReceivedPacket, PhyError> {
        let digitized = std::mem::take(&mut state.digitized);
        let out = self.receive_packet_from_record(&digitized, state);
        state.digitized = digitized;
        out
    }

    /// [`Gen2Receiver::receive_packet_predigitized`] reading the digitized
    /// record from a caller-owned slice (e.g. one lane of a batched trial
    /// arena) instead of `state.digitized` — bit-identical results.
    ///
    /// The same memo caveat applies: `state.chanest_memo` must refer to
    /// *this* record (the caller just ran a known-timing pass on it) or be
    /// `None`; [`Gen2Receiver::payload_statistics_predigitized_with`]
    /// re-establishes that invariant at its entry.
    ///
    /// # Errors
    ///
    /// Same as [`Gen2Receiver::receive_packet`].
    pub fn receive_packet_from_record(
        &self,
        digitized: &[Complex],
        state: &mut RxState,
    ) -> Result<ReceivedPacket, PhyError> {
        let acq = self.acquire_record(digitized, state);
        self.receive_packet_acquired(digitized, &acq, state)
    }

    /// The coarse-acquisition front of [`receive_packet_from_record`]: one
    /// preamble period of candidate phases correlated against the cached
    /// matched-template spectrum. Split out so the batched runtime can sweep
    /// acquisition across a whole batch of digitized lanes (amortizing the
    /// template spectrum via [`Gen2Receiver::warm_acquisition`]) before any
    /// lane's frame is decoded. Emits the same forensics notes and the
    /// `acq_miss` event the fused path emits.
    ///
    /// [`receive_packet_from_record`]: Gen2Receiver::receive_packet_from_record
    pub fn acquire_record(&self, digitized: &[Complex], state: &mut RxState) -> AcquisitionResult {
        let sps = self.config.samples_per_slot();
        let period = self.config.preamble_length() * sps;
        let acq = {
            let _t = uwb_obs::span!("rx_acquisition");
            self.acquisition
                .acquire_with(digitized, period + CIR_PRE_SAMPLES, &mut state.scratch)
        };
        // Flight-recorder forensics: where the correlator locked and how
        // confidently (milli-units of the normalized [0,1] peak metric).
        uwb_obs::note!("acq_offset", acq.offset as u64);
        uwb_obs::note!("acq_metric_milli", (acq.metric * 1000.0) as u64);
        if !acq.detected {
            uwb_obs::event!("acq_miss");
        }
        acq
    }

    /// The frame-decode back half of [`receive_packet_from_record`], given
    /// an acquisition result obtained from [`Gen2Receiver::acquire_record`]
    /// over the *same* digitized record. Bit-identical to the fused path;
    /// the miss forensics were already emitted at acquisition time.
    ///
    /// # Errors
    ///
    /// Same as [`Gen2Receiver::receive_packet`].
    ///
    /// [`receive_packet_from_record`]: Gen2Receiver::receive_packet_from_record
    pub fn receive_packet_acquired(
        &self,
        digitized: &[Complex],
        acq: &AcquisitionResult,
        state: &mut RxState,
    ) -> Result<ReceivedPacket, PhyError> {
        if !acq.detected {
            return Err(PhyError::SyncFailed);
        }
        let (header, payload) = self.decode_frame_on(digitized, state, acq.offset)?;
        Ok(ReceivedPacket {
            payload,
            header,
            acquisition: *acq,
            estimate: state.estimate.clone(),
        })
    }

    /// Pre-builds the cached matched-template spectrum for the transform
    /// size acquisition will use on a record of `record_len` samples, so a
    /// batched acquisition sweep pays the template FFT once per batch
    /// instead of lazily inside the first lane's timed search. Identical
    /// results either way — this only moves when the memo is built.
    pub fn warm_acquisition(&self, record_len: usize) {
        let period = self.config.preamble_length() * self.config.samples_per_slot();
        self.acquisition.warm(record_len, period + CIR_PRE_SAMPLES);
    }

    /// Channel estimation + RAKE rebuild around the acquisition lock at
    /// `offset` into `state.digitized` (shared by the batch and streaming
    /// decode paths). Returns `est_start`, the base sample index the RAKE
    /// finger delays are relative to.
    fn prepare_rake_at(&self, state: &mut RxState, offset: usize) -> usize {
        let digitized = std::mem::take(&mut state.digitized);
        let est_start = self.prepare_rake_on(&digitized, state, offset);
        state.digitized = digitized;
        est_start
    }

    /// [`Gen2Receiver::prepare_rake_at`] reading the digitized record from
    /// a caller-owned slice.
    fn prepare_rake_on(&self, digitized: &[Complex], state: &mut RxState, offset: usize) -> usize {
        let period = self.config.preamble_length() * self.config.samples_per_slot();
        let est_start = offset.saturating_sub(CIR_PRE_SAMPLES);
        if state.chanest_memo == Some(offset) {
            // `state.estimate` already holds the (quantized) estimate for
            // exactly this (digitized record, offset) pair; recomputing
            // would reproduce it bit-for-bit.
            return est_start;
        }
        let periods = (self.config.preamble_repeats - 1).max(1);
        {
            let _t = uwb_obs::span!("rx_chanest");
            estimate_cir_into(
                digitized,
                &self.preamble_template,
                est_start,
                CIR_WINDOW,
                periods,
                period,
                &mut state.estimate,
            );
            if let Some(bits) = self.config.chanest_bits {
                state.estimate.quantize_in_place(bits);
            }
        }
        state.chanest_memo = Some(offset);
        est_start
    }

    /// Decodes the header of a frame whose acquisition lock sits at `offset`
    /// within the already-digitized record in `state`. Used by the streaming
    /// receiver to learn the payload length (and hence the frame span it must
    /// buffer) before the payload has streamed in.
    pub(crate) fn decode_header_at(
        &self,
        state: &mut RxState,
        offset: usize,
    ) -> Result<Header, PhyError> {
        let est_start = self.prepare_rake_at(state, offset);
        let sps = self.config.samples_per_slot();
        let _t_rake = uwb_obs::span!("rx_rake");
        state
            .rake
            .rebuild_from_estimate(&state.estimate, self.config.rake_fingers, &mut state.finger_idx);
        let digitized = &state.digitized;
        let rake = &state.rake;
        let preamble_slots = self.config.preamble_length() * self.config.preamble_repeats;
        let header_start = preamble_slots + SFD_SLOTS;
        let n_header = header_slot_count(&self.config);
        let header_stats: Vec<Complex> = (0..n_header)
            .map(|k| {
                rake.combine_direct(digitized, &self.pulse, est_start + (header_start + k) * sps)
            })
            .collect();
        drop(_t_rake);
        let _t_decode = uwb_obs::span!("rx_decode");
        decode_header(&header_stats, &self.config).inspect_err(|_| {
            uwb_obs::event!("header_fail");
        })
    }

    /// Decodes one full frame whose acquisition lock sits at `offset` within
    /// the already-digitized record in `state`: channel estimation → RAKE
    /// rebuild → header → payload. Shared by
    /// [`Gen2Receiver::receive_packet_with`], the batch scan loop, and the
    /// incremental [`crate::stream_rx::StreamRx`].
    pub(crate) fn decode_frame_at(
        &self,
        state: &mut RxState,
        offset: usize,
    ) -> Result<(Header, Vec<u8>), PhyError> {
        let digitized = std::mem::take(&mut state.digitized);
        let out = self.decode_frame_on(&digitized, state, offset);
        state.digitized = digitized;
        out
    }

    /// [`Gen2Receiver::decode_frame_at`] reading the digitized record from
    /// a caller-owned slice (the batched runtime's arena lanes).
    fn decode_frame_on(
        &self,
        digitized: &[Complex],
        state: &mut RxState,
        offset: usize,
    ) -> Result<(Header, Vec<u8>), PhyError> {
        let sps = self.config.samples_per_slot();
        let est_start = self.prepare_rake_on(digitized, state, offset);

        // --- Matched filter + RAKE ---
        // The matched filter is evaluated lazily at the finger delays of
        // each decoded slot (combine_direct) instead of FFT-filtering the
        // whole record: only slots × fingers values are ever read.
        let _t_rake = uwb_obs::span!("rx_rake");
        state
            .rake
            .rebuild_from_estimate(&state.estimate, self.config.rake_fingers, &mut state.finger_idx);
        let rake = &state.rake;

        // Slot s of the frame has its pulse starting at offset + s*sps;
        // fingers are relative to est_start = offset - CIR_PRE_SAMPLES.
        let prompt_base = est_start;
        let stat = |slot: usize| -> Complex {
            rake.combine_direct(digitized, &self.pulse, prompt_base + slot * sps)
        };

        // --- Header ---
        let preamble_slots = self.config.preamble_length() * self.config.preamble_repeats;
        let header_start = preamble_slots + SFD_SLOTS;
        let n_header = header_slot_count(&self.config);
        let header_stats: Vec<Complex> =
            (0..n_header).map(|k| stat(header_start + k)).collect();
        drop(_t_rake);
        let _t_decode = uwb_obs::span!("rx_decode");
        let header = decode_header(&header_stats, &self.config).inspect_err(|_| {
            uwb_obs::event!("header_fail");
        })?;

        // --- Payload ---
        let payload_start = header_start + n_header;
        let n_payload = payload_slot_count(header.payload_len, &self.config);
        let mut payload_stats: Vec<Complex> =
            (0..n_payload).map(|k| stat(payload_start + k)).collect();
        self.maybe_track_carrier_in_place(&mut payload_stats);
        self.maybe_equalize_in_place(
            &mut payload_stats,
            &state.estimate,
            &state.rake,
            &mut state.scratch,
        );
        let payload =
            decode_payload(&payload_stats, header.payload_len, &self.config).inspect_err(|e| {
                if matches!(e, PhyError::CrcMismatch) {
                    uwb_obs::event!("crc_fail");
                }
            })?;
        Ok((header, payload))
    }

    /// Scans a long record for multiple packets: acquire → decode → skip
    /// past the decoded frame → repeat. Records that fail to decode after a
    /// successful acquisition are skipped past the *acquired* preamble so a
    /// corrupted packet cannot stall the scan (or be rescanned forever when
    /// its preamble sits late in the attempt window).
    ///
    /// Returns every successfully decoded packet together with its start
    /// offset (in samples) within `samples`.
    ///
    /// Every attempt re-digitizes and re-scans the whole remaining record —
    /// O(record²) on long captures, and the entire record must be resident.
    /// Prefer [`crate::stream_rx::StreamRx`], which runs the same state
    /// machine incrementally over blocks in bounded memory.
    #[deprecated(
        since = "0.1.0",
        note = "use `StreamRx` for incremental, bounded-memory packet scanning"
    )]
    pub fn receive_stream(&self, samples: &[Complex]) -> Vec<(usize, ReceivedPacket)> {
        let sps = self.config.samples_per_slot();
        let period = self.config.preamble_length() * sps;
        let mut state = RxState::new();
        let mut packets = Vec::new();
        let mut cursor = 0usize;
        // Need at least a preamble + header's worth of samples to try.
        let min_len = period * self.config.preamble_repeats + 64 * sps;
        while cursor + min_len <= samples.len() {
            let window = &samples[cursor..];
            {
                let _t = uwb_obs::span!("rx_agc_adc");
                self.digitize_into(window, &mut state.digitized);
                state.chanest_memo = None;
            }
            let acq = {
                let _t = uwb_obs::span!("rx_acquisition");
                self.acquisition.acquire_with(
                    &state.digitized,
                    period + CIR_PRE_SAMPLES,
                    &mut state.scratch,
                )
            };
            if !acq.detected {
                // Nothing acquired in this window's first period of phases:
                // slide one period and keep scanning (records may contain
                // long silence between packets).
                uwb_obs::event!("acq_miss");
                cursor += period;
                continue;
            }
            match self.decode_frame_at(&mut state, acq.offset) {
                Ok((header, payload)) => {
                    let frame_slots = self.config.preamble_length()
                        * self.config.preamble_repeats
                        + SFD_SLOTS
                        + header_slot_count(&self.config)
                        + payload_slot_count(header.payload_len, &self.config);
                    let advance = acq.offset + frame_slots * sps;
                    packets.push((
                        cursor + acq.offset,
                        ReceivedPacket {
                            payload,
                            header,
                            acquisition: acq,
                            estimate: state.estimate.clone(),
                        },
                    ));
                    cursor += advance.max(period);
                }
                Err(_) => {
                    // Acquired but failed to decode: advance past the
                    // preamble that was actually acquired (`offset` into this
                    // window plus one period), not blindly one period from
                    // the window start — the old behavior could land the
                    // next attempt inside the same corrupted frame and burn
                    // an acquisition pass per period for the rest of it.
                    cursor += acq.offset + period;
                }
            }
        }
        packets
    }

    /// When carrier tracking is enabled and the payload is BPSK, runs the
    /// decision-directed PLL over the slot statistics in time order,
    /// de-rotating residual CFO/phase-noise spin (paper Fig. 3's "PLL"
    /// block). Other modulations pass through unchanged.
    fn maybe_track_carrier_in_place(&self, stats: &mut [Complex]) {
        if !self.config.carrier_tracking || self.config.modulation != Modulation::Bpsk {
            return;
        }
        let mut pll = crate::tracking::Pll::new(0.25);
        for z in stats.iter_mut() {
            *z = pll.track(*z);
        }
    }

    /// When the configuration enables the MLSE (Viterbi demodulator) and the
    /// payload is plain BPSK at one pulse per bit, equalizes the residual
    /// symbol-rate ISI the RAKE output still carries (paper §1: "the ISI due
    /// to multipath can be addressed with a Viterbi demodulator"). Rewrites
    /// `stats` with hard-remodulated symbols; otherwise leaves it untouched.
    ///
    /// The decided-symbol buffer is drawn from (and returned to) `scratch`,
    /// so the only steady-state allocations left on this path are the Viterbi
    /// trellis internals — see
    /// [`MlseEqualizer::equalize_symbols_into`][crate::mlse::MlseEqualizer::equalize_symbols_into]
    /// for the precise per-call breakdown. The MLSE path remains the one
    /// documented exception to the zero-allocation steady state (the nominal
    /// configuration does not enable it).
    fn maybe_equalize_in_place(
        &self,
        stats: &mut Vec<Complex>,
        estimate: &ChannelEstimate,
        rake: &RakeReceiver,
        scratch: &mut DspScratch,
    ) {
        let applicable = self.config.mlse_taps > 1
            && self.config.mlse_taps <= 9
            && self.config.modulation == Modulation::Bpsk
            && self.config.pulses_per_bit == 1
            && self.config.fec.is_none();
        if !applicable {
            return;
        }
        let g = rake.symbol_spaced_response(
            estimate,
            self.config.samples_per_slot(),
            self.config.mlse_taps,
        );
        if g.iter().map(|z| z.norm_sqr()).sum::<f64>() <= 0.0 {
            return;
        }
        let eq = MlseEqualizer::new(g);
        let mut decided = scratch.take_complex(stats.len());
        eq.equalize_symbols_into(stats, &mut decided);
        stats.clear();
        stats.extend_from_slice(&decided);
        scratch.put_complex(decided);
    }

    /// BER-measurement fast path: demodulates payload slot statistics with
    /// *known* frame timing (slot 0 pulse starts at `slot0_start` in
    /// `samples`), skipping acquisition. Returns the raw per-slot decision
    /// statistics so callers can count bit errors against ground truth.
    pub fn payload_statistics_known_timing(
        &self,
        samples: &[Complex],
        slot0_start: usize,
        payload_len: usize,
    ) -> Vec<Complex> {
        let mut state = RxState::new();
        let mut out = Vec::new();
        self.payload_statistics_known_timing_with(
            samples,
            slot0_start,
            payload_len,
            &mut state,
            &mut out,
        );
        out
    }

    /// [`Gen2Receiver::payload_statistics_known_timing`] drawing every work
    /// buffer from a caller-owned [`RxState`] and writing the statistics into
    /// `out` — identical results, zero steady-state heap allocation (the
    /// per-trial form used by the Monte-Carlo BER engine; the MLSE path,
    /// when enabled, is the documented exception).
    pub fn payload_statistics_known_timing_with(
        &self,
        samples: &[Complex],
        slot0_start: usize,
        payload_len: usize,
        state: &mut RxState,
        out: &mut Vec<Complex>,
    ) {
        {
            let _t = uwb_obs::span!("rx_agc_adc");
            self.digitize_into(samples, &mut state.digitized);
            state.chanest_memo = None;
        }
        let digitized = std::mem::take(&mut state.digitized);
        self.payload_statistics_predigitized_with(&digitized, slot0_start, payload_len, state, out);
        state.digitized = digitized;
    }

    /// The chanest → RAKE → demodulate back half of
    /// [`Gen2Receiver::payload_statistics_known_timing_with`], reading an
    /// already-digitized record from a caller-owned slice (one lane of the
    /// batched runtime's digitized arena; produce it with
    /// [`Gen2Receiver::digitize_append`] under the caller's own
    /// `rx_agc_adc` span). Bit-identical to the fused form — digitization
    /// and channel estimation are pure functions of the record.
    ///
    /// Resets `state.chanest_memo` at entry (the record is externally
    /// supplied, so any memoized estimate may belong to a different
    /// record), then leaves the memo referring to this record — so a
    /// following [`Gen2Receiver::receive_packet_from_record`] on the *same*
    /// record skips the duplicate channel estimate exactly like the fused
    /// full-trial sequence.
    pub fn payload_statistics_predigitized_with(
        &self,
        digitized: &[Complex],
        slot0_start: usize,
        payload_len: usize,
        state: &mut RxState,
        out: &mut Vec<Complex>,
    ) {
        state.chanest_memo = None;
        let sps = self.config.samples_per_slot();
        let est_start = self.prepare_rake_on(digitized, state, slot0_start);
        let _t_rake = uwb_obs::span!("rx_rake");
        state
            .rake
            .rebuild_from_estimate(&state.estimate, self.config.rake_fingers, &mut state.finger_idx);
        let preamble_slots = self.config.preamble_length() * self.config.preamble_repeats;
        let payload_slot0 = preamble_slots + SFD_SLOTS + header_slot_count(&self.config);
        let n_payload = payload_slot_count(payload_len, &self.config);
        let rake = &state.rake;
        out.clear();
        out.extend((0..n_payload).map(|k| {
            rake.combine_direct(digitized, &self.pulse, est_start + (payload_slot0 + k) * sps)
        }));
        drop(_t_rake);
        self.maybe_track_carrier_in_place(out);
        self.maybe_equalize_in_place(out, &state.estimate, &state.rake, &mut state.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::awgn::add_awgn_complex;
    use uwb_sim::sv_channel::{ChannelModel, ChannelRealization};
    use uwb_sim::Rand;

    fn link(config: &Gen2Config) -> (Gen2Transmitter, Gen2Receiver) {
        (
            Gen2Transmitter::new(config.clone()).unwrap(),
            Gen2Receiver::new(config.clone()).unwrap(),
        )
    }

    #[test]
    fn clean_awgn_free_packet() {
        let cfg = Gen2Config::nominal_100mbps();
        let (tx, rx) = link(&cfg);
        let payload: Vec<u8> = (0..64u8).collect();
        let burst = tx.transmit_packet(&payload).unwrap();
        let got = rx.receive_packet(&burst.samples).unwrap();
        assert_eq!(got.payload, payload);
        assert_eq!(got.header.payload_len, 64);
        assert!(got.acquisition.detected);
    }

    #[test]
    fn predigitized_matches_full_receive_bitwise() {
        // receive_packet_predigitized after a known-timing BER pass (the
        // trial_full sequence) must agree exactly with a fresh
        // receive_packet_with on the same record.
        let cfg = Gen2Config::nominal_100mbps();
        let (tx, rx) = link(&cfg);
        let payload = vec![0x5Au8; 32];
        let burst = tx.transmit_packet(&payload).unwrap();
        let mut rng = Rand::new(3);
        let p = uwb_dsp::complex::mean_power(&burst.samples);
        let noisy = add_awgn_complex(&burst.samples, p / 2.0, &mut rng);

        let mut fresh = RxState::new();
        let want = rx.receive_packet_with(&noisy, &mut fresh).unwrap();

        let mut state = RxState::new();
        let mut stats = Vec::new();
        let slot0_start = burst.slot0_center - tx.pulse().len() / 2;
        rx.payload_statistics_known_timing_with(
            &noisy,
            slot0_start,
            payload.len(),
            &mut state,
            &mut stats,
        );
        let got = rx.receive_packet_predigitized(&mut state).unwrap();
        assert_eq!(got.payload, want.payload);
        assert_eq!(got.header, want.header);
        assert_eq!(got.acquisition.offset, want.acquisition.offset);
        assert_eq!(
            got.acquisition.metric.to_bits(),
            want.acquisition.metric.to_bits()
        );
        assert_eq!(got.estimate.taps(), want.estimate.taps());
    }

    #[test]
    fn packet_with_noise() {
        let cfg = Gen2Config::nominal_100mbps();
        let (tx, rx) = link(&cfg);
        let payload = vec![0xC3u8; 48];
        let burst = tx.transmit_packet(&payload).unwrap();
        let mut rng = Rand::new(1);
        // Per-sample SNR around 3 dB: pulse-level Eb/N0 is ~13 dB.
        let p = uwb_dsp::complex::mean_power(&burst.samples);
        let noisy = add_awgn_complex(&burst.samples, p / 2.0, &mut rng);
        let got = rx.receive_packet(&noisy).unwrap();
        assert_eq!(got.payload, payload);
    }

    #[test]
    fn packet_through_cm1_multipath() {
        let cfg = Gen2Config::nominal_100mbps();
        let (tx, rx) = link(&cfg);
        let payload = vec![0x11u8; 32];
        let burst = tx.transmit_packet(&payload).unwrap();
        let mut rng = Rand::new(7);
        let ch = ChannelRealization::generate(ChannelModel::Cm1, &mut rng);
        let through = ch.apply(&burst.samples, cfg.sample_rate);
        let got = rx.receive_packet(&through).unwrap();
        assert_eq!(got.payload, payload);
        // The RAKE should have found multiple meaningful fingers.
        assert!(got.estimate.energy() > 0.0);
    }

    #[test]
    fn noise_only_fails_sync() {
        let cfg = Gen2Config::nominal_100mbps();
        let rx = Gen2Receiver::new(cfg).unwrap();
        let mut rng = Rand::new(2);
        let noise = uwb_sim::awgn::complex_noise(30_000, 1.0, &mut rng);
        assert!(matches!(
            rx.receive_packet(&noise),
            Err(PhyError::SyncFailed)
        ));
    }

    #[test]
    fn one_bit_adc_still_works_in_noise() {
        // The paper's claim: 1-bit is sufficient in the noise-limited regime.
        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.adc_bits = 1;
        let (tx, rx) = link(&cfg);
        let payload = vec![0x77u8; 24];
        let burst = tx.transmit_packet(&payload).unwrap();
        let mut rng = Rand::new(6);
        let p = uwb_dsp::complex::mean_power(&burst.samples);
        // 1-bit conversion *needs* noise to dither; a noiseless record would
        // be fine too here since pulses are sparse, but add some anyway.
        let noisy = add_awgn_complex(&burst.samples, p, &mut rng);
        let got = rx.receive_packet(&noisy).unwrap();
        assert_eq!(got.payload, payload);
    }

    #[test]
    fn known_timing_stats_match_payload() {
        let cfg = Gen2Config::nominal_100mbps();
        let (tx, rx) = link(&cfg);
        let payload = vec![0xF0u8; 16];
        let burst = tx.transmit_packet(&payload).unwrap();
        let stats = rx.payload_statistics_known_timing(
            &burst.samples,
            burst.slot0_center - tx.pulse().len() / 2,
            payload.len(),
        );
        let decoded = decode_payload(&stats, payload.len(), &cfg).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn fec_config_round_trips() {
        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.fec = Some(crate::fec::ConvCode::k3());
        let (tx, rx) = link(&cfg);
        let payload = vec![0xABu8; 40];
        let burst = tx.transmit_packet(&payload).unwrap();
        let got = rx.receive_packet(&burst.samples).unwrap();
        assert_eq!(got.payload, payload);
        assert!(got.header.fec);
    }

    #[test]
    #[allow(deprecated)]
    fn stream_reception_finds_multiple_packets() {
        let cfg = Gen2Config {
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        };
        let tx = Gen2Transmitter::new(cfg.clone()).unwrap();
        let rx = Gen2Receiver::new(cfg.clone()).unwrap();
        let payloads: Vec<Vec<u8>> = vec![
            b"first packet".to_vec(),
            b"second, longer packet with more bytes".to_vec(),
            b"third".to_vec(),
        ];
        // Concatenate with silence gaps of varying length.
        let mut record = vec![Complex::ZERO; 3000];
        for (i, p) in payloads.iter().enumerate() {
            let burst = tx.transmit_packet(p).unwrap();
            record.extend_from_slice(&burst.samples);
            record.extend(vec![Complex::ZERO; 2000 + i * 1500]);
        }
        let mut rng = Rand::new(21);
        let p_sig = uwb_dsp::complex::mean_power(&record);
        let noisy = add_awgn_complex(&record, p_sig / 10.0, &mut rng);
        let packets = rx.receive_stream(&noisy);
        assert_eq!(packets.len(), 3, "found {} packets", packets.len());
        for ((offset, packet), expected) in packets.iter().zip(&payloads) {
            assert_eq!(&packet.payload, expected);
            assert!(*offset >= 2900, "offset {offset}");
        }
        // Offsets strictly increasing.
        assert!(packets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    #[allow(deprecated)]
    fn stream_reception_empty_record() {
        let cfg = Gen2Config {
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        };
        let rx = Gen2Receiver::new(cfg).unwrap();
        let mut rng = Rand::new(22);
        let noise = uwb_sim::awgn::complex_noise(40_000, 1.0, &mut rng);
        assert!(rx.receive_stream(&noise).is_empty());
        assert!(rx.receive_stream(&[]).is_empty());
    }

    #[test]
    fn carrier_tracking_rescues_cfo() {
        // A 50 kHz residual CFO rotates the constellation by ~1.6 rad over a
        // 48-byte payload: fatal without tracking, benign with the PLL.
        let base = Gen2Config {
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        };
        let payload = vec![0x2Du8; 48];
        let run = |tracking: bool| -> Result<Vec<u8>, PhyError> {
            let cfg = Gen2Config {
                carrier_tracking: tracking,
                ..base.clone()
            };
            let tx = Gen2Transmitter::new(cfg.clone()).unwrap();
            let rx = Gen2Receiver::new(cfg.clone()).unwrap();
            let burst = tx.transmit_packet(&payload).unwrap();
            let mut lo = uwb_rf::LocalOscillator::with_impairments(
                uwb_sim::Hertz::from_ghz(5.0),
                10.0, // ppm -> 50 kHz at 5 GHz
                0.0,
            );
            let mut rng = Rand::new(11);
            let spun = lo.baseband_rotation(&burst.samples, cfg.sample_rate.as_hz(), &mut rng);
            rx.receive_packet(&spun).map(|p| p.payload)
        };
        assert!(run(false).is_err(), "CFO should break the untracked link");
        assert_eq!(run(true).unwrap(), payload);
    }

    #[test]
    fn mlse_rescues_heavy_isi() {
        use uwb_sim::sv_channel::Tap;
        // A two-ray channel with the echo exactly one symbol (10 ns) later
        // at 70 % amplitude: brutal symbol-rate ISI.
        let taps = vec![
            Tap {
                delay_ns: 0.0,
                gain: Complex::new(1.0, 0.0),
            },
            Tap {
                delay_ns: 10.0,
                gain: Complex::new(0.7, 0.0),
            },
        ];
        let ch = ChannelRealization::from_taps(taps);
        let payload = vec![0x6Bu8; 48];

        let base = Gen2Config {
            rake_fingers: 1,
            preamble_repeats: 2,
            ..Gen2Config::nominal_100mbps()
        };
        let run = |mlse_taps: usize, seed: u64| -> usize {
            let cfg = Gen2Config {
                mlse_taps,
                ..base.clone()
            };
            let tx = Gen2Transmitter::new(cfg.clone()).unwrap();
            let rx = Gen2Receiver::new(cfg.clone()).unwrap();
            let burst = tx.transmit_packet(&payload).unwrap();
            let through = ch.apply(&burst.samples, cfg.sample_rate);
            let mut rng = Rand::new(seed);
            let p = uwb_dsp::complex::mean_power(&through);
            let noisy = add_awgn_complex(&through, p / 3.0, &mut rng);
            let slot0 = burst.slot0_center - tx.pulse().len() / 2;
            let stats = rx.payload_statistics_known_timing(&noisy, slot0, payload.len());
            let bits =
                crate::packet::decode_payload_bits(&stats, payload.len(), &cfg).unwrap();
            crate::packet::reference_payload_bits(&payload)
                .iter()
                .zip(&bits)
                .filter(|(a, b)| a != b)
                .count()
        };
        let mut errs_plain = 0;
        let mut errs_mlse = 0;
        for seed in 0..4 {
            errs_plain += run(0, seed);
            errs_mlse += run(2, seed);
        }
        assert!(
            errs_mlse * 3 < errs_plain.max(1),
            "MLSE {errs_mlse} errors vs plain {errs_plain}"
        );
    }

    #[test]
    fn known_timing_with_state_matches_plain() {
        let cfg = Gen2Config::nominal_100mbps();
        let (tx, rx) = link(&cfg);
        let payload = vec![0x9Au8; 24];
        let burst = tx.transmit_packet(&payload).unwrap();
        let slot0 = burst.slot0_center - tx.pulse().len() / 2;
        let want = rx.payload_statistics_known_timing(&burst.samples, slot0, payload.len());
        let mut state = RxState::new();
        let mut out = Vec::new();
        // Repeated calls on one warm state stay bit-identical.
        for _ in 0..3 {
            rx.payload_statistics_known_timing_with(
                &burst.samples,
                slot0,
                payload.len(),
                &mut state,
                &mut out,
            );
            assert_eq!(out, want);
        }
    }

    #[test]
    fn receive_packet_with_state_matches_plain() {
        let cfg = Gen2Config::nominal_100mbps();
        let (tx, rx) = link(&cfg);
        let payload = vec![0x42u8; 20];
        let burst = tx.transmit_packet(&payload).unwrap();
        let want = rx.receive_packet(&burst.samples).unwrap();
        let mut state = RxState::new();
        for _ in 0..2 {
            let got = rx.receive_packet_with(&burst.samples, &mut state).unwrap();
            assert_eq!(got.payload, want.payload);
            assert_eq!(got.header, want.header);
            assert_eq!(got.acquisition, want.acquisition);
            assert_eq!(got.estimate, want.estimate);
        }
    }

    #[test]
    fn receiver_rejects_bad_config() {
        let mut cfg = Gen2Config::nominal_100mbps();
        cfg.rake_fingers = 0;
        assert!(Gen2Receiver::new(cfg).is_err());
    }

    #[test]
    fn stage_split_apis_match_fused_path_bitwise() {
        // digitize_append + payload_statistics_predigitized_with +
        // receive_packet_from_record (the batched stage-sweep sequence)
        // must reproduce the fused known-timing + predigitized sequence
        // bit-for-bit.
        let cfg = Gen2Config::nominal_100mbps();
        let (tx, rx) = link(&cfg);
        let payload = vec![0x3Cu8; 32];
        let burst = tx.transmit_packet(&payload).unwrap();
        let mut rng = Rand::new(9);
        let p = uwb_dsp::complex::mean_power(&burst.samples);
        let noisy = add_awgn_complex(&burst.samples, p / 2.0, &mut rng);
        let slot0 = burst.slot0_center - tx.pulse().len() / 2;

        // Reference: the fused per-trial sequence (trial_full's shape).
        let mut fused = RxState::new();
        let mut want_stats = Vec::new();
        rx.payload_statistics_known_timing_with(
            &noisy,
            slot0,
            payload.len(),
            &mut fused,
            &mut want_stats,
        );
        let want_pkt = rx.receive_packet_predigitized(&mut fused).unwrap();

        // Stage-split: digitize into an external lane, then run the back
        // half and the acquisition pass from that lane.
        let mut lane = vec![Complex::ONE; 7]; // junk prefix: append semantics
        rx.digitize_append(&noisy, &mut lane);
        let digitized = &lane[7..];
        assert_eq!(digitized, &fused.digitized[..], "digitize_append parity");
        let mut split = RxState::new();
        let mut got_stats = Vec::new();
        rx.payload_statistics_predigitized_with(
            digitized,
            slot0,
            payload.len(),
            &mut split,
            &mut got_stats,
        );
        assert_eq!(
            got_stats
                .iter()
                .map(|z| (z.re.to_bits(), z.im.to_bits()))
                .collect::<Vec<_>>(),
            want_stats
                .iter()
                .map(|z| (z.re.to_bits(), z.im.to_bits()))
                .collect::<Vec<_>>()
        );
        let got_pkt = rx.receive_packet_from_record(digitized, &mut split).unwrap();
        assert_eq!(got_pkt.payload, want_pkt.payload);
        assert_eq!(got_pkt.header, want_pkt.header);
        assert_eq!(got_pkt.acquisition, want_pkt.acquisition);
        assert_eq!(got_pkt.estimate, want_pkt.estimate);
    }
}
