//! Error types for the PHY crate.

use std::fmt;

/// Errors produced by PHY configuration and packet processing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PhyError {
    /// A configuration parameter is out of its valid range.
    InvalidConfig(String),
    /// The requested channel index does not exist in the band plan.
    InvalidChannel(usize),
    /// Packet payload exceeds the maximum frame size.
    PayloadTooLarge {
        /// Bytes requested.
        requested: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// Packet synchronization failed (no preamble found).
    SyncFailed,
    /// The header failed its CRC or could not be decoded.
    HeaderInvalid,
    /// The payload CRC check failed after demodulation.
    CrcMismatch,
    /// The sample record ended before the expected packet did.
    TruncatedInput,
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PhyError::InvalidChannel(idx) => {
                write!(f, "channel index {idx} outside the 14-channel band plan")
            }
            PhyError::PayloadTooLarge { requested, max } => {
                write!(f, "payload of {requested} bytes exceeds maximum {max}")
            }
            PhyError::SyncFailed => write!(f, "packet synchronization failed"),
            PhyError::HeaderInvalid => write!(f, "header failed validation"),
            PhyError::CrcMismatch => write!(f, "payload crc mismatch"),
            PhyError::TruncatedInput => write!(f, "sample record ended mid-packet"),
        }
    }
}

impl std::error::Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PhyError::SyncFailed.to_string().contains("synchronization"));
        assert!(PhyError::InvalidChannel(20).to_string().contains("20"));
        let e = PhyError::PayloadTooLarge {
            requested: 5000,
            max: 4095,
        };
        assert!(e.to_string().contains("5000"));
    }

    #[test]
    fn is_error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<PhyError>();
    }
}
