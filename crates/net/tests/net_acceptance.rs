//! The network simulator's acceptance contracts, end to end:
//!
//! 1. **Isolation parity** — a link whose channel is beyond the front end's
//!    selectivity floor from every other link produces a BER counter
//!    **bit-identical** to the same link run alone through the single-link
//!    streamed path.
//! 2. **Contention** — two co-channel links at equal SNR are each strictly
//!    worse than their isolated selves.
//! 3. **Thread determinism** — the whole network run (all per-link
//!    counters) is bit-identical for any worker thread count.
//! 4. **Scale** — ≥ 8 concurrent links across ≥ 3 channels runs and
//!    reports coherently.

use uwb_net::{
    build_coupling, plan_network, run_network, run_plan, run_plan_threads, ChannelPolicy,
    NetScenario,
};
use uwb_phy::bandplan::Channel;
use uwb_platform::link::{run_ber_fast_streamed_budgeted, TrialBudget};
use uwb_sim::topology::{LinkGeometry, Position, Topology};

const SEED: u64 = 20050314;

fn ch(i: usize) -> Channel {
    Channel::new(i).unwrap()
}

/// Two links laid out so each interfering path (1.6 − 1.0 = 0.6 m) is
/// *shorter* than the victim's own path (1.0 m): strong, symmetric mutual
/// interference when co-channel.
fn contended_pair() -> Topology {
    Topology::new(vec![
        LinkGeometry::new(Position::new(0.0, 0.0), Position::new(1.0, 0.0)),
        LinkGeometry::new(Position::new(1.6, 0.0), Position::new(0.6, 0.0)),
    ])
}

#[test]
fn isolated_link_matches_single_link_streamed_path_bitwise() {
    // 8 links; link 7 parked on channel 13 while everyone else crowds
    // channels 0–2 — the gap to channel 13 is far below the gen2
    // selectivity floor, so link 7's coupling row must be empty and its
    // counter bit-identical to a solo streamed run.
    let mut sc = NetScenario::ring(8, 7.0, SEED);
    sc.policy = ChannelPolicy::Static(vec![
        ch(0),
        ch(0),
        ch(1),
        ch(1),
        ch(2),
        ch(2),
        ch(0),
        ch(13),
    ]);
    sc.rounds = 6;
    let report = run_network(&sc);
    assert!(
        report.plan.coupling[7].is_empty(),
        "channel 13 must be decoupled: {:?}",
        report.plan.coupling[7]
    );

    let solo = run_ber_fast_streamed_budgeted(
        &report.plan.links[7].scenario,
        sc.payload_len,
        sc.block_len,
        u64::MAX,
        u64::MAX,
        TrialBudget {
            max_trials: sc.rounds,
        },
    );
    assert_eq!(
        report.links[7].counter, solo.counter,
        "isolated network link must be bit-identical to the solo streamed run"
    );
    assert_eq!(report.links[7].packets, sc.rounds);
}

#[test]
fn co_channel_contention_strictly_degrades_both_links() {
    let rounds = 12;
    let mut contended = NetScenario::ring(2, 6.0, SEED ^ 0xC0);
    contended.topology = contended_pair();
    contended.policy = ChannelPolicy::Static(vec![ch(3), ch(3)]);
    contended.rounds = rounds;
    let report = run_network(&contended);
    assert_eq!(report.plan.coupling[0].len(), 1);
    assert_eq!(report.plan.coupling[1].len(), 1);

    // The isolated baseline: identical links, seeds, rounds — channels so
    // far apart nothing couples.
    let mut isolated = contended.clone();
    isolated.policy = ChannelPolicy::Static(vec![ch(0), ch(13)]);
    let base = run_network(&isolated);
    assert!(base.plan.coupling.iter().all(|r| r.is_empty()));

    for l in 0..2 {
        let with = report.links[l].counter;
        let without = base.links[l].counter;
        assert!(
            with.errors > without.errors,
            "link {l}: contended {with:?} must be strictly worse than isolated {without:?}"
        );
    }
    // Contention also shows up in the goodput aggregate.
    assert!(report.aggregate_throughput_bps < base.aggregate_throughput_bps);
}

#[test]
fn network_run_is_bit_identical_across_thread_counts() {
    let mut sc = NetScenario::ring(8, 7.0, SEED ^ 0x7E);
    sc.rounds = 10;
    let plan = plan_network(&sc);
    let reference = run_plan_threads(plan.clone(), 1);
    for threads in [2, 4, 8] {
        let got = run_plan_threads(plan.clone(), threads);
        for l in 0..sc.len() {
            assert_eq!(
                got.links[l].counter, reference.links[l].counter,
                "thread count {threads} changed link {l}'s counter"
            );
            assert_eq!(got.links[l].packets, reference.links[l].packets);
            assert_eq!(got.links[l].packets_bad, reference.links[l].packets_bad);
        }
        assert_eq!(
            got.aggregate_throughput_bps.to_bits(),
            reference.aggregate_throughput_bps.to_bits(),
            "thread count {threads} changed the aggregate"
        );
    }
}

#[test]
fn eight_links_three_channels_report_coherently() {
    let mut sc = NetScenario::ring(8, 9.0, SEED ^ 0x33);
    sc.policy = ChannelPolicy::RoundRobin(vec![ch(1), ch(6), ch(11)]);
    sc.rounds = 4;
    let report = run_network(&sc);
    assert_eq!(report.len(), 8);
    let mut used: Vec<usize> = report.links.iter().map(|l| l.channel.index()).collect();
    used.sort_unstable();
    used.dedup();
    assert_eq!(used, vec![1, 6, 11], "three distinct channels in use");
    let mut agg = 0.0;
    for (l, r) in report.links.iter().enumerate() {
        assert_eq!(r.packets, sc.rounds, "link {l} must attempt every round");
        assert!(r.counter.total > 0, "link {l} counted no bits");
        assert!(r.throughput_bps >= 0.0 && r.throughput_bps <= r.bit_rate);
        agg += r.throughput_bps;
    }
    assert!((report.aggregate_throughput_bps - agg).abs() < 1e-6);
    // The co-channel pairs (links 0/3/6 share channel 1, etc.) must see
    // finite probe-measured interference; the geometry makes it nonzero.
    assert!(report.links[0].interference_rel_db.is_finite());
}

#[test]
fn interference_aware_policy_beats_all_co_channel() {
    // 6 tightly packed links, candidates spread across the band: the
    // greedy measured-interference policy must deliver at least the
    // aggregate goodput of the all-co-channel worst case.
    let mut aware = NetScenario::ring(6, 6.0, SEED ^ 0x11);
    aware.topology = Topology::ring(6, 1.0, 1.0);
    aware.policy = ChannelPolicy::InterferenceAware(vec![ch(0), ch(4), ch(8), ch(12)]);
    aware.rounds = 6;
    let aware_report = run_network(&aware);

    let mut packed = aware.clone();
    packed.policy = ChannelPolicy::Static(vec![ch(0)]);
    let packed_report = run_network(&packed);

    let aware_errs: u64 = aware_report.links.iter().map(|l| l.counter.errors).sum();
    let packed_errs: u64 = packed_report.links.iter().map(|l| l.counter.errors).sum();
    assert!(
        aware_errs <= packed_errs,
        "interference-aware ({aware_errs} errors) must not be worse than all-co-channel ({packed_errs})"
    );
    assert!(
        aware_report.aggregate_throughput_bps >= packed_report.aggregate_throughput_bps,
        "aware {} < packed {}",
        aware_report.aggregate_throughput_bps,
        packed_report.aggregate_throughput_bps
    );
}

#[test]
fn sparse_graph_round_is_bit_identical_to_dense_path() {
    // 16 users, round-robin across the band: co- and adjacent-channel
    // coupling everywhere. The sparse scenario's floor (-150 dB) is far
    // below every coupling the spectral floor keeps, so the geometric
    // pruning must be a pure no-op: the planned graph must equal both the
    // classic dense-semantics plan and the brute-force O(N²) reference
    // bit-for-bit, and the measurement rounds must produce bit-identical
    // counters.
    let mut dense_sc = NetScenario::ring(16, 7.0, SEED ^ 0x16);
    dense_sc.rounds = 4;
    let mut sparse_sc = dense_sc.clone();
    sparse_sc.coupling.floor_db = -150.0;

    let dense_plan = plan_network(&dense_sc);
    let sparse_plan = plan_network(&sparse_sc);

    let channels: Vec<Channel> = dense_plan.links.iter().map(|l| l.channel).collect();
    let reference = build_coupling(&dense_sc.topology, &dense_sc.selectivity, &channels);
    assert!(
        reference.iter().any(|r| !r.is_empty()),
        "the 16-user scenario must actually couple"
    );
    for v in 0..16 {
        let bits = |row: &Vec<(usize, f64)>| -> Vec<(usize, u64)> {
            row.iter().map(|&(u, g)| (u, g.to_bits())).collect()
        };
        assert_eq!(
            bits(&sparse_plan.coupling[v]),
            bits(&reference[v]),
            "sparse row {v} differs from the dense reference"
        );
        assert_eq!(
            bits(&sparse_plan.coupling[v]),
            bits(&dense_plan.coupling[v]),
            "sparse row {v} differs from the default-parameters plan"
        );
    }

    let dense_report = run_plan(dense_plan);
    let sparse_report = run_plan(sparse_plan);
    for l in 0..16 {
        assert_eq!(
            dense_report.links[l].counter, sparse_report.links[l].counter,
            "link {l}: sparse-graph round diverged from the dense path"
        );
    }
    assert_eq!(
        dense_report.aggregate_throughput_bps.to_bits(),
        sparse_report.aggregate_throughput_bps.to_bits()
    );
}

/// Release-scale gate (run via `scripts/check.sh net`): a 1,000-user
/// clustered city plans with a bounded sparse graph and measures
/// bit-identically for 1/2/4/8 worker threads.
#[test]
#[ignore = "release-scale gate: scripts/check.sh net runs it with --release"]
fn thousand_user_clustered_round_is_thread_invariant() {
    let mut sc = NetScenario::clustered_city(100, 10, 7.0, SEED ^ 0x1000);
    sc.rounds = 1;
    let plan = plan_network(&sc);
    let n = plan.len();
    assert_eq!(n, 1000);
    let edges: usize = plan.coupling.iter().map(|r| r.len()).sum();
    let edges_per_node = edges as f64 / n as f64;
    assert!(edges > 0, "the city must actually couple");
    assert!(
        edges_per_node < 80.0,
        "graph is not sparse: {edges_per_node:.1} edges/node"
    );

    let reference = run_plan_threads(plan.clone(), 1);
    for threads in [2, 4, 8] {
        let got = run_plan_threads(plan.clone(), threads);
        for l in 0..n {
            assert_eq!(
                got.links[l].counter, reference.links[l].counter,
                "thread count {threads} changed link {l}'s counter"
            );
            assert_eq!(got.links[l].packets, reference.links[l].packets);
            assert_eq!(got.links[l].packets_bad, reference.links[l].packets_bad);
        }
        assert_eq!(
            got.aggregate_throughput_bps.to_bits(),
            reference.aggregate_throughput_bps.to_bits(),
            "thread count {threads} changed the aggregate"
        );
    }
}

#[test]
fn run_plan_matches_run_network() {
    let mut sc = NetScenario::ring(3, 8.0, SEED ^ 0x55);
    sc.rounds = 3;
    let a = run_network(&sc);
    let b = run_plan(plan_network(&sc));
    for l in 0..sc.len() {
        assert_eq!(a.links[l].counter, b.links[l].counter);
    }
}
