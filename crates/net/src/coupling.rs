//! The coupling model: how much of transmitter `u`'s waveform lands in
//! receiver `v`'s baseband, relative to `v`'s own signal.
//!
//! Three multiplicative (additive-in-dB) terms:
//!
//! 1. **Geometry** — `Topology::relative_gain_db(u, v, f)`: the path-loss
//!    difference between the interfering path and the victim's own path
//!    (the near–far term).
//! 2. **Spectral overlap** — `Channel::overlap_attenuation_db`: 0 dB
//!    co-channel; `-inf` for disjoint occupied bands (all distinct channel
//!    pairs on the 528 MHz grid).
//! 3. **Front-end selectivity** — `ChannelSelectivity::rejection_db` keyed
//!    on the occupied-band gap: the *finite* leakage through real filters
//!    that makes adjacent channels couple even though their occupied bands
//!    are disjoint. Below the selectivity floor the coupling is dropped
//!    entirely (`None`), which is what makes a link on a far channel
//!    **bit-identical** to an isolated link rather than merely close.

use uwb_phy::bandplan::Channel;
use uwb_rf::ChannelSelectivity;
use uwb_sim::topology::Topology;

/// Relative power gain (dB) of transmitter `u` into receiver `v`, or
/// `None` when the coupling falls below the front end's selectivity floor
/// and is dropped from the simulation.
///
/// `ch_u`/`ch_v` are the links' assigned channels; geometry is evaluated at
/// the victim's carrier.
pub fn coupling_db(
    topology: &Topology,
    selectivity: &ChannelSelectivity,
    u: usize,
    ch_u: Channel,
    v: usize,
    ch_v: Channel,
) -> Option<f64> {
    let spectral_db = if ch_u == ch_v {
        // Co-channel: full occupied-band overlap, 0 dB.
        ch_v.overlap_attenuation_db(ch_u)
    } else {
        // Disjoint occupied bands: only the front end's finite stop-band
        // leakage couples. Below the floor the term vanishes outright.
        selectivity.rejection_db(ch_v.gap_hz(ch_u))?
    };
    if spectral_db == f64::NEG_INFINITY {
        return None;
    }
    let spatial_db = topology.relative_gain_db(u, v, ch_v.center());
    Some(spatial_db + spectral_db)
}

/// One victim's interference sources: `(tx_link, linear_amplitude_gain)`
/// pairs in ascending `tx_link` order — the fixed mixing order that keeps
/// the superposition bit-identical for any thread count and block split.
pub type CouplingRow = Vec<(usize, f64)>;

/// Builds the full coupling table for an assignment of links to channels.
/// Row `v` lists every foreign transmitter that couples into receiver `v`
/// above the selectivity floor, with its **amplitude** gain
/// (`10^(dB/20)`, since records are mixed in amplitude).
pub fn build_coupling(
    topology: &Topology,
    selectivity: &ChannelSelectivity,
    channels: &[Channel],
) -> Vec<CouplingRow> {
    let n = topology.len();
    assert_eq!(channels.len(), n, "one channel per link");
    (0..n)
        .map(|v| {
            (0..n)
                .filter(|&u| u != v)
                .filter_map(|u| {
                    coupling_db(topology, selectivity, u, channels[u], v, channels[v])
                        .map(|db| (u, 10f64.powf(db / 20.0)))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring2() -> Topology {
        Topology::ring(2, 2.0, 1.0)
    }

    #[test]
    fn co_channel_couples_at_spatial_gain() {
        let topo = ring2();
        let sel = ChannelSelectivity::gen2();
        let ch = Channel::new(3).unwrap();
        let db = coupling_db(&topo, &sel, 1, ch, 0, ch).unwrap();
        let spatial = topo.relative_gain_db(1, 0, ch.center());
        assert!((db - spatial).abs() < 1e-12, "{db} vs {spatial}");
    }

    #[test]
    fn adjacent_channel_attenuated_by_selectivity() {
        let topo = ring2();
        let sel = ChannelSelectivity::gen2();
        let a = Channel::new(3).unwrap();
        let b = Channel::new(4).unwrap();
        let co = coupling_db(&topo, &sel, 1, a, 0, a).unwrap();
        let adj = coupling_db(&topo, &sel, 1, b, 0, a).unwrap();
        assert!((co - adj - 30.0).abs() < 1e-9, "co {co} adj {adj}");
    }

    #[test]
    fn far_channel_coupling_dropped() {
        let topo = ring2();
        let sel = ChannelSelectivity::gen2();
        let a = Channel::new(0).unwrap();
        let b = Channel::new(13).unwrap();
        assert_eq!(coupling_db(&topo, &sel, 1, b, 0, a), None);
        // Three channels away already falls below the gen2 floor.
        let c = Channel::new(3).unwrap();
        assert_eq!(coupling_db(&topo, &sel, 1, c, 0, a), None);
    }

    #[test]
    fn brick_wall_drops_everything_off_channel() {
        let topo = ring2();
        let sel = ChannelSelectivity::brick_wall();
        let a = Channel::new(3).unwrap();
        let b = Channel::new(4).unwrap();
        assert!(coupling_db(&topo, &sel, 1, a, 0, a).is_some());
        assert_eq!(coupling_db(&topo, &sel, 1, b, 0, a), None);
    }

    #[test]
    fn coupling_table_shape_and_order() {
        let topo = Topology::ring(4, 3.0, 1.0);
        let sel = ChannelSelectivity::gen2();
        let ch3 = Channel::new(3).unwrap();
        let rows = build_coupling(&topo, &sel, &[ch3; 4]);
        assert_eq!(rows.len(), 4);
        for (v, row) in rows.iter().enumerate() {
            // All-co-channel: everyone couples into everyone.
            assert_eq!(row.len(), 3, "victim {v}");
            // Ascending tx order (the deterministic mixing order).
            for w in row.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
            for &(u, g) in row {
                assert_ne!(u, v);
                assert!(g > 0.0 && g.is_finite());
            }
        }
    }

    #[test]
    fn spread_channels_decouple_table() {
        let topo = Topology::ring(3, 3.0, 1.0);
        let sel = ChannelSelectivity::gen2();
        let chans = [
            Channel::new(0).unwrap(),
            Channel::new(6).unwrap(),
            Channel::new(12).unwrap(),
        ];
        let rows = build_coupling(&topo, &sel, &chans);
        assert!(rows.iter().all(|r| r.is_empty()), "{rows:?}");
    }
}
