//! The coupling model: how much of transmitter `u`'s waveform lands in
//! receiver `v`'s baseband, relative to `v`'s own signal.
//!
//! Three multiplicative (additive-in-dB) terms:
//!
//! 1. **Geometry** — `Topology::relative_gain_db(u, v, f)`: the path-loss
//!    difference between the interfering path and the victim's own path
//!    (the near–far term).
//! 2. **Spectral overlap** — `Channel::overlap_attenuation_db`: 0 dB
//!    co-channel; `-inf` for disjoint occupied bands (all distinct channel
//!    pairs on the 528 MHz grid).
//! 3. **Front-end selectivity** — `ChannelSelectivity::rejection_db` keyed
//!    on the occupied-band gap: the *finite* leakage through real filters
//!    that makes adjacent channels couple even though their occupied bands
//!    are disjoint. Below the selectivity floor the coupling is dropped
//!    entirely (`None`), which is what makes a link on a far channel
//!    **bit-identical** to an isolated link rather than merely close.

use uwb_phy::bandplan::Channel;
use uwb_rf::ChannelSelectivity;
use uwb_sim::pathloss::log_distance_path_loss_db;
use uwb_sim::topology::{SpatialGrid, Topology};

/// The spectral term of a coupling: in-band overlap attenuation for
/// co-channel pairs, front-end stop-band leakage for disjoint occupied
/// bands. `None` once the leakage falls below the selectivity floor — a
/// function of the **channel pair only**, and symmetric in its arguments,
/// which is why graph builders evaluate it once per unordered pair (or once
/// per channel pair) instead of once per directed edge.
fn spectral_term(selectivity: &ChannelSelectivity, ch_u: Channel, ch_v: Channel) -> Option<f64> {
    let spectral_db = if ch_u == ch_v {
        // Co-channel: full occupied-band overlap, 0 dB.
        ch_v.overlap_attenuation_db(ch_u)
    } else {
        // Disjoint occupied bands: only the front end's finite stop-band
        // leakage couples. Below the floor the term vanishes outright.
        selectivity.rejection_db(ch_v.gap_hz(ch_u))?
    };
    if spectral_db == f64::NEG_INFINITY {
        None
    } else {
        Some(spectral_db)
    }
}

/// Relative power gain (dB) of transmitter `u` into receiver `v`, or
/// `None` when the coupling falls below the front end's selectivity floor
/// and is dropped from the simulation.
///
/// `ch_u`/`ch_v` are the links' assigned channels; geometry is evaluated at
/// the victim's carrier.
pub fn coupling_db(
    topology: &Topology,
    selectivity: &ChannelSelectivity,
    u: usize,
    ch_u: Channel,
    v: usize,
    ch_v: Channel,
) -> Option<f64> {
    let spectral_db = spectral_term(selectivity, ch_u, ch_v)?;
    let spatial_db = topology.relative_gain_db(u, v, ch_v.center());
    Some(spatial_db + spectral_db)
}

/// One victim's interference sources: `(tx_link, linear_amplitude_gain)`
/// pairs in ascending `tx_link` order — the fixed mixing order that keeps
/// the superposition bit-identical for any thread count and block split.
pub type CouplingRow = Vec<(usize, f64)>;

/// Parameters of the sparse interference-graph build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingParams {
    /// Total-coupling floor, in dB relative to the victim's own signal: a
    /// directed coupling whose combined spatial + spectral gain is **at or
    /// below** this is dropped from the graph entirely (the interferer is
    /// unresolvable against the victim's noise). `NEG_INFINITY` disables
    /// geometric pruning — only the front end's spectral floor drops edges,
    /// exactly the classic dense semantics.
    pub floor_db: f64,
    /// Optional cap: keep only the `k` strongest couplings per receiver
    /// (ties break toward the lower transmitter index). `None` = unbounded.
    pub max_per_rx: Option<usize>,
    /// Spatial-grid cell size override in metres; `None` picks
    /// `sqrt(bounding-box area / N)` — about one transmitter per cell.
    pub grid_cell_m: Option<f64>,
}

impl Default for CouplingParams {
    fn default() -> CouplingParams {
        CouplingParams {
            floor_db: f64::NEG_INFINITY,
            max_per_rx: None,
            grid_cell_m: None,
        }
    }
}

/// Per-link own-path loss at each link's own carrier — the shared term of
/// every coupling into that receiver, computed once per link instead of
/// once per directed edge.
fn own_path_losses(topology: &Topology, channels: &[Channel]) -> Vec<f64> {
    (0..topology.len())
        .map(|v| topology.path_loss_db(v, v, channels[v].center()))
        .collect()
}

/// Builds the full coupling table for an assignment of links to channels
/// by brute-force pair enumeration — the O(N²) reference the sparse build
/// is tested against, and the default for small networks.
///
/// Row `v` lists every foreign transmitter that couples into receiver `v`
/// above the selectivity floor, with its **amplitude** gain
/// (`10^(dB/20)`, since records are mixed in amplitude).
///
/// Edge work is deduplicated per **unordered pair**: the spectral term
/// (symmetric in the channel pair) is evaluated once and both directed
/// edges are materialized from it, with the per-victim own-path loss
/// hoisted out of the pair loop entirely.
pub fn build_coupling(
    topology: &Topology,
    selectivity: &ChannelSelectivity,
    channels: &[Channel],
) -> Vec<CouplingRow> {
    let n = topology.len();
    assert_eq!(channels.len(), n, "one channel per link");
    let own_pl = own_path_losses(topology, channels);
    let mut rows: Vec<CouplingRow> = vec![Vec::new(); n];
    for v in 0..n {
        for u in (v + 1)..n {
            // One spectral evaluation serves both directions: the occupied-
            // band gap and the overlap attenuation are symmetric.
            let Some(s) = spectral_term(selectivity, channels[u], channels[v]) else {
                continue;
            };
            // u → v. Pushed ascending: row v first receives partners < v
            // from earlier outer iterations, then u > v in inner order.
            let db_uv = own_pl[v] - topology.path_loss_db(u, v, channels[v].center()) + s;
            rows[v].push((u, 10f64.powf(db_uv / 20.0)));
            // v → u.
            let db_vu = own_pl[u] - topology.path_loss_db(v, u, channels[u].center()) + s;
            rows[u].push((v, 10f64.powf(db_vu / 20.0)));
        }
    }
    rows
}

/// Builds the coupling table through per-channel spatial grids, enumerating
/// ~O(k) candidates per receiver instead of all N transmitters: for victim
/// `v`, only the channels whose spectral term is above the selectivity
/// floor are visited, and within each, only transmitters inside the radius
/// where the combined coupling can still clear `params.floor_db`. Couplings
/// below the floor are **never enumerated**.
///
/// For every edge that both builds keep, the stored gain is **bit-identical**
/// to [`build_coupling`]'s (same float operations in the same order), so on
/// a scenario where no coupling falls below `params.floor_db` the sparse
/// graph is a pure no-op relative to the dense one.
pub fn build_coupling_sparse(
    topology: &Topology,
    selectivity: &ChannelSelectivity,
    channels: &[Channel],
    params: &CouplingParams,
) -> Vec<CouplingRow> {
    let n = topology.len();
    assert_eq!(channels.len(), n, "one channel per link");
    let nch = Channel::all().count();
    let own_pl = own_path_losses(topology, channels);
    let exponent = topology.path_loss_exponent;

    // Group transmitters by assigned channel and grid each group.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); nch];
    for (l, ch) in channels.iter().enumerate() {
        members[ch.index()].push(l);
    }
    let cell = params.grid_cell_m.unwrap_or_else(|| auto_cell_m(topology));
    let grids: Vec<Option<SpatialGrid>> = members
        .iter()
        .map(|m| {
            if m.is_empty() {
                None
            } else {
                Some(SpatialGrid::from_points(
                    m.iter().map(|&l| (l, topology.links[l].tx)),
                    cell,
                ))
            }
        })
        .collect();

    // Spectral term per (tx-channel, victim-channel) pair — 14×14, not N².
    let spectral: Vec<Vec<Option<f64>>> = (0..nch)
        .map(|cu| {
            (0..nch)
                .map(|cv| {
                    spectral_term(
                        selectivity,
                        Channel::new(cu).expect("band-plan channel"),
                        Channel::new(cv).expect("band-plan channel"),
                    )
                })
                .collect()
        })
        .collect();

    let mut rows: Vec<CouplingRow> = Vec::with_capacity(n);
    let mut cand: Vec<u32> = Vec::new();
    for v in 0..n {
        let cv = channels[v].index();
        let f = channels[v].center();
        let mut row: CouplingRow = Vec::new();
        for (cu, grid) in grids.iter().enumerate() {
            let Some(grid) = grid else { continue };
            let Some(s) = spectral[cu][cv] else { continue };
            let radius = interference_radius_m(topology, own_pl[v], s, params.floor_db, f, exponent);
            grid.within_radius_into(topology.links[v].rx, radius, &mut cand);
            for &u in &cand {
                let u = u as usize;
                if u == v {
                    continue;
                }
                // Same float-op order as the dense build — bit-identical
                // gains for every edge both builds keep.
                let db = own_pl[v] - topology.path_loss_db(u, v, f) + s;
                if db > params.floor_db {
                    row.push((u, 10f64.powf(db / 20.0)));
                }
            }
        }
        // Candidates arrive grouped by channel; restore the ascending-tx
        // mixing order the measurement phase's bit-exactness contract needs.
        row.sort_unstable_by_key(|&(u, _)| u);
        if let Some(k) = params.max_per_rx {
            if row.len() > k {
                // Keep the k strongest (ties toward the lower tx index),
                // then restore ascending-tx order.
                row.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                row.truncate(k);
                row.sort_unstable_by_key(|&(u, _)| u);
            }
        }
        rows.push(row);
    }
    rows
}

/// Carrier-sense neighbor sets derived from the directed coupling graph.
///
/// Link `l` *senses* link `u` when either directed coupling between the
/// pair has a relative power gain at or above `sense_threshold_db` (rows
/// store linear **amplitude** gains, so the comparison threshold is
/// `10^(dB/20)`). The relation is symmetrized — carrier sense is a
/// listen-before-talk energy measurement, approximately reciprocal even
/// though interference coupling (whose reference is each victim's own
/// signal) is not.
///
/// Edges *in the coupling graph but below the sense threshold* are exactly
/// the hidden-terminal pairs: a MAC layer deferring on these sets will
/// still collide on those edges, and the collision energy genuinely lands
/// in the victim's mixed record. Each set is ascending and deduplicated.
pub fn sense_sets(rows: &[CouplingRow], sense_threshold_db: f64) -> Vec<Vec<usize>> {
    let thr = 10f64.powf(sense_threshold_db / 20.0);
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
    for (v, row) in rows.iter().enumerate() {
        for &(u, gain) in row {
            if gain >= thr {
                sets[v].push(u);
                sets[u].push(v);
            }
        }
    }
    for s in &mut sets {
        s.sort_unstable();
        s.dedup();
    }
    sets
}

/// Default grid cell: about one transmitter per cell over the bounding box.
fn auto_cell_m(topology: &Topology) -> f64 {
    let xs = topology.links.iter().map(|l| l.tx.x);
    let ys = topology.links.iter().map(|l| l.tx.y);
    let (min_x, max_x) = (xs.clone().fold(f64::INFINITY, f64::min), xs.fold(f64::NEG_INFINITY, f64::max));
    let (min_y, max_y) = (ys.clone().fold(f64::INFINITY, f64::min), ys.fold(f64::NEG_INFINITY, f64::max));
    let area = (max_x - min_x) * (max_y - min_y);
    let cell = (area / topology.len().max(1) as f64).sqrt();
    if cell.is_finite() && cell > 0.0 {
        cell
    } else {
        1.0
    }
}

/// The distance beyond which a transmitter with spectral term `s` cannot
/// clear the coupling floor at this victim: solves
/// `own_pl + s − PL(d) = floor` for `d` under the log-distance model, with
/// a relative margin and the near-field clamp added so floating-point
/// round-off in the closed form can never exclude an edge the exact
/// per-edge check would keep (the query is a superset; every candidate is
/// re-checked exactly).
fn interference_radius_m(
    topology: &Topology,
    own_pl_db: f64,
    spectral_db: f64,
    floor_db: f64,
    f: uwb_sim::time::Hertz,
    exponent: f64,
) -> f64 {
    if floor_db == f64::NEG_INFINITY {
        return f64::INFINITY;
    }
    let pl_at_1m = log_distance_path_loss_db(1.0, f, exponent);
    let budget_db = own_pl_db + spectral_db - floor_db - pl_at_1m;
    let d = 10f64.powf(budget_db / (10.0 * exponent));
    d * (1.0 + 1e-9) + topology.min_distance_m
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::topology::{LinkGeometry, Position};

    fn ring2() -> Topology {
        Topology::ring(2, 2.0, 1.0)
    }

    fn ch(i: usize) -> Channel {
        Channel::new(i).unwrap()
    }

    #[test]
    fn sense_sets_symmetrize_and_threshold() {
        // 3 links; directed rows: 0 hears 1 loudly (0 dB), 1 hears 2
        // faintly (-60 dB), 2 hears nobody.
        let rows: Vec<CouplingRow> = vec![
            vec![(1, 1.0)],
            vec![(2, 1e-3)],
            vec![],
        ];
        // Threshold between the two edge strengths: only the 0<->1 pair is
        // mutually sensed; the 1<-2 edge stays a hidden terminal.
        let sets = sense_sets(&rows, -40.0);
        assert_eq!(sets[0], vec![1], "0 senses 1");
        assert_eq!(sets[1], vec![0], "sensing is symmetrized");
        assert!(sets[2].is_empty(), "below-threshold edge is hidden");
        // A permissive threshold picks up the faint edge too.
        let sets = sense_sets(&rows, -80.0);
        assert_eq!(sets[1], vec![0, 2]);
        assert_eq!(sets[2], vec![1]);
    }

    #[test]
    fn co_channel_couples_at_spatial_gain() {
        let topo = ring2();
        let sel = ChannelSelectivity::gen2();
        let ch = Channel::new(3).unwrap();
        let db = coupling_db(&topo, &sel, 1, ch, 0, ch).unwrap();
        let spatial = topo.relative_gain_db(1, 0, ch.center());
        assert!((db - spatial).abs() < 1e-12, "{db} vs {spatial}");
    }

    #[test]
    fn adjacent_channel_attenuated_by_selectivity() {
        let topo = ring2();
        let sel = ChannelSelectivity::gen2();
        let a = Channel::new(3).unwrap();
        let b = Channel::new(4).unwrap();
        let co = coupling_db(&topo, &sel, 1, a, 0, a).unwrap();
        let adj = coupling_db(&topo, &sel, 1, b, 0, a).unwrap();
        assert!((co - adj - 30.0).abs() < 1e-9, "co {co} adj {adj}");
    }

    #[test]
    fn far_channel_coupling_dropped() {
        let topo = ring2();
        let sel = ChannelSelectivity::gen2();
        let a = Channel::new(0).unwrap();
        let b = Channel::new(13).unwrap();
        assert_eq!(coupling_db(&topo, &sel, 1, b, 0, a), None);
        // Three channels away already falls below the gen2 floor.
        let c = Channel::new(3).unwrap();
        assert_eq!(coupling_db(&topo, &sel, 1, c, 0, a), None);
    }

    #[test]
    fn brick_wall_drops_everything_off_channel() {
        let topo = ring2();
        let sel = ChannelSelectivity::brick_wall();
        let a = Channel::new(3).unwrap();
        let b = Channel::new(4).unwrap();
        assert!(coupling_db(&topo, &sel, 1, a, 0, a).is_some());
        assert_eq!(coupling_db(&topo, &sel, 1, b, 0, a), None);
    }

    #[test]
    fn coupling_table_shape_and_order() {
        let topo = Topology::ring(4, 3.0, 1.0);
        let sel = ChannelSelectivity::gen2();
        let ch3 = Channel::new(3).unwrap();
        let rows = build_coupling(&topo, &sel, &[ch3; 4]);
        assert_eq!(rows.len(), 4);
        for (v, row) in rows.iter().enumerate() {
            // All-co-channel: everyone couples into everyone.
            assert_eq!(row.len(), 3, "victim {v}");
            // Ascending tx order (the deterministic mixing order).
            for w in row.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
            for &(u, g) in row {
                assert_ne!(u, v);
                assert!(g > 0.0 && g.is_finite());
            }
        }
    }

    /// A mixed-channel layout where the sparse build must reproduce the
    /// dense table exactly — same edges, bitwise-equal gains.
    fn assert_sparse_matches_dense(topo: &Topology, channels: &[Channel], params: &CouplingParams) {
        let sel = ChannelSelectivity::gen2();
        let dense = build_coupling(topo, &sel, channels);
        let sparse = build_coupling_sparse(topo, &sel, channels, params);
        assert_eq!(dense.len(), sparse.len());
        for (v, (d, s)) in dense.iter().zip(&sparse).enumerate() {
            assert_eq!(d.len(), s.len(), "victim {v}: {d:?} vs {s:?}");
            for ((du, dg), (su, sg)) in d.iter().zip(s) {
                assert_eq!(du, su, "victim {v} edge set differs");
                assert_eq!(dg.to_bits(), sg.to_bits(), "victim {v} tx {du} gain differs");
            }
        }
    }

    #[test]
    fn sparse_build_is_noop_without_floor() {
        let topo = Topology::ring(24, 6.0, 1.0);
        let channels: Vec<Channel> = (0..24).map(|l| ch(l % 14)).collect();
        assert_sparse_matches_dense(&topo, &channels, &CouplingParams::default());
    }

    #[test]
    fn sparse_build_is_noop_when_floor_below_every_coupling() {
        // Tight ring: every coupling is way above a −200 dB floor, so the
        // geometric pruning must be a pure no-op — and the radius pass is
        // still exercised (finite floor ⇒ finite query radii).
        let topo = Topology::ring(16, 3.0, 1.0);
        let channels: Vec<Channel> = (0..16).map(|l| ch(l % 3)).collect();
        let params = CouplingParams {
            floor_db: -200.0,
            ..CouplingParams::default()
        };
        assert_sparse_matches_dense(&topo, &channels, &params);
    }

    #[test]
    fn coupling_floor_drops_far_co_channel_interferers() {
        // Two co-channel links 500 m apart with 1 m own paths: relative
        // gain ≈ −54 dB. A −40 dB floor must cut the edge both ways; the
        // spectral-only dense build keeps it.
        let topo = Topology::new(vec![
            LinkGeometry::new(Position::new(0.0, 0.0), Position::new(1.0, 0.0)),
            LinkGeometry::new(Position::new(500.0, 0.0), Position::new(501.0, 0.0)),
        ]);
        let sel = ChannelSelectivity::gen2();
        let channels = [ch(3), ch(3)];
        let dense = build_coupling(&topo, &sel, &channels);
        assert!(dense.iter().all(|r| r.len() == 1), "{dense:?}");
        let params = CouplingParams {
            floor_db: -40.0,
            ..CouplingParams::default()
        };
        let sparse = build_coupling_sparse(&topo, &sel, &channels, &params);
        assert!(sparse.iter().all(|r| r.is_empty()), "{sparse:?}");
    }

    #[test]
    fn max_per_rx_keeps_strongest_in_ascending_order() {
        let topo = Topology::ring(10, 2.0, 1.0);
        let channels = [ch(5); 10];
        let sel = ChannelSelectivity::gen2();
        let full = build_coupling_sparse(&topo, &sel, &channels, &CouplingParams::default());
        let params = CouplingParams {
            max_per_rx: Some(3),
            ..CouplingParams::default()
        };
        let capped = build_coupling_sparse(&topo, &sel, &channels, &params);
        for (v, row) in capped.iter().enumerate() {
            assert_eq!(row.len(), 3, "victim {v}");
            for w in row.windows(2) {
                assert!(w[0].0 < w[1].0, "ascending tx order");
            }
            // Every kept gain is ≥ every dropped gain.
            let kept_min = row.iter().map(|&(_, g)| g).fold(f64::INFINITY, f64::min);
            for &(u, g) in &full[v] {
                if !row.iter().any(|&(ku, _)| ku == u) {
                    assert!(g <= kept_min, "victim {v} dropped a stronger edge");
                }
            }
        }
    }

    #[test]
    fn spread_channels_decouple_table() {
        let topo = Topology::ring(3, 3.0, 1.0);
        let sel = ChannelSelectivity::gen2();
        let chans = [
            Channel::new(0).unwrap(),
            Channel::new(6).unwrap(),
            Channel::new(12).unwrap(),
        ];
        let rows = build_coupling(&topo, &sel, &chans);
        assert!(rows.iter().all(|r| r.is_empty()), "{rows:?}");
    }
}
