//! The network controller: channel allocation + per-link adaptation.
//!
//! Everything that *reacts to measurements* happens here, in a serial,
//! deterministic **planning phase** before the Monte-Carlo measurement
//! phase starts. The deterministic parallel engine forbids carrying
//! information between trials through worker state, so closed-loop control
//! cannot run inside the measurement loop; instead the controller probes
//! the network once (real synthesized waveforms, real
//! `uwb_phy::spectral` measurements), freezes its decisions into a
//! [`NetPlan`], and the measurement phase replays that static plan —
//! bit-identically for any `UWB_THREADS`.

use crate::arena::{RecordArena, RecordSchedule};
use crate::coupling::{build_coupling_sparse, coupling_db, CouplingRow};
use crate::scenario::{ChannelPolicy, NetScenario};
use uwb_dsp::complex::mean_power;
use uwb_dsp::stream::accumulate_scaled;
use uwb_dsp::Complex;
use uwb_phy::bandplan::Channel;
use uwb_phy::{ChannelConditions, InterfererReport, LinkAdapter, OperatingPoint, PowerModel, SpectralMonitor};
use uwb_platform::link::{channel_rms_delay_ns, LinkScenario, LinkWorker};
use uwb_sim::rng::derive_trial_seed;
use uwb_sim::time::Hertz;
use uwb_sim::Rand;

/// Salt that decorrelates per-link seed streams from the engine's per-round
/// trial seeds (both derive from the scenario master seed).
const LINK_SEED_SALT: u64 = 0x9e3a_75f1_7c15_2bd1;

/// The reserved trial index used for planning probes — measurement rounds
/// are `0..rounds` and never reach it.
const PROBE_ROUND: u64 = u64::MAX;

/// Decorrelated master seed for link `l` of a network with master seed
/// `net_seed`. Round `r` of link `l` runs on `Rand::for_trial(seed, r)` —
/// the same schedule a single-link streamed run with `scenario.seed = seed`
/// uses for trial `r`, which is what makes the isolation bit-parity
/// contract testable.
pub fn link_seed(net_seed: u64, l: usize) -> u64 {
    derive_trial_seed(net_seed ^ LINK_SEED_SALT, l as u64)
}

/// Frozen per-link plan entry.
#[derive(Debug, Clone)]
pub struct NetLinkPlan {
    /// The link's complete single-link scenario: adapted config (with the
    /// assigned channel written in), Eb/N0, channel model, and the link's
    /// decorrelated seed.
    pub scenario: LinkScenario,
    /// The assigned band-plan channel (also in `scenario.config.channel`).
    pub channel: Channel,
    /// Probe-measured interference power at this receiver relative to its
    /// own signal power, in dB (`-inf` when nothing couples).
    pub interference_rel_db: f64,
    /// Spectral-monitor report over the probe superposition (planning
    /// diagnostic; drives the adapter's `interferer_present`).
    pub spectral: InterfererReport,
    /// The adapter's chosen operating point when adaptation is enabled.
    pub operating: Option<OperatingPoint>,
}

/// The frozen network plan: everything the measurement phase needs, and
/// nothing it may mutate.
#[derive(Debug, Clone)]
pub struct NetPlan {
    /// Per-link entries, indexed by link id.
    pub links: Vec<NetLinkPlan>,
    /// Row `v`: foreign transmitters coupling into receiver `v`
    /// (ascending-index, amplitude gains).
    pub coupling: Vec<CouplingRow>,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Streaming block length in samples.
    pub block_len: usize,
    /// Measurement rounds.
    pub rounds: u64,
    /// Network master seed (the Monte-Carlo master).
    pub seed: u64,
}

impl NetPlan {
    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when the plan has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The decorrelated master seed of link `l` (equals
    /// `self.links[l].scenario.seed`).
    pub fn link_seed(&self, l: usize) -> u64 {
        self.links[l].scenario.seed
    }
}

/// Runs the planning phase: probe synthesis, channel allocation,
/// measurement-driven adaptation, coupling-table construction.
///
/// Serial and deterministic — a pure function of the scenario. Telemetry:
/// the whole phase runs under a `net_schedule` span.
///
/// # Panics
///
/// Panics if the scenario has no links, a policy candidate list is empty,
/// or an adapted configuration fails validation.
pub fn plan_network(scenario: &NetScenario) -> NetPlan {
    let _t = uwb_obs::span!("net_schedule");
    let n = scenario.len();
    assert!(n > 0, "network needs at least one link");

    // --- Channel allocation. ---
    // The static policies are pure index arithmetic; the greedy
    // interference-aware policy synthesizes its own dense probe table
    // internally (documented small-N).
    let channels = allocate_channels(scenario);

    // --- Sparse interference graph on the final assignment. ---
    // Couplings below the scenario's floor are never enumerated; with the
    // default parameters the rows are bit-identical to the dense
    // `build_coupling` reference.
    let coupling =
        build_coupling_sparse(&scenario.topology, &scenario.selectivity, &channels, &scenario.coupling);

    // --- Per-link probe measurements on the final assignment. ---
    // Row-driven sweep over the shared-waveform arena: each link's clean
    // probe record is synthesized once (by a single shared worker — probes
    // always use the base config), shared by every coupled victim, and its
    // slot recycled after its last reader. Peak memory is the graph's
    // overlap width, not N records.
    let schedule = RecordSchedule::build(n, &coupling);
    let mut arena = RecordArena::new(n, schedule.max_live());
    let mut probe_worker = LinkWorker::new(&LinkScenario {
        config: scenario.base_config.clone(),
        channel: scenario.channel_model,
        ebn0_db: scenario.ebn0_db,
        interferer: None,
        notch_enabled: false,
        seed: scenario.seed,
    });
    let mut probe = LinkScenario {
        config: scenario.base_config.clone(),
        channel: scenario.channel_model,
        ebn0_db: scenario.ebn0_db,
        interferer: None,
        notch_enabled: false,
        seed: 0,
    };
    let mut probe_n0 = vec![0.0f64; n];

    let monitor = SpectralMonitor::new();
    let fs_hz = scenario.base_config.sample_rate.as_hz();
    let mut mix = Vec::new();
    let mut entries = Vec::with_capacity(n);
    let mut curve = Vec::new(); // reused across links (trade_curve_into)
    let adapter = LinkAdapter::new(scenario.base_config.clone(), PowerModel::cmos180());
    let delay_ns = channel_rms_delay_ns(scenario.channel_model, 8, scenario.seed);
    for v in 0..n {
        ensure_probe(scenario, v, &mut probe, &mut probe_worker, &mut arena, &mut probe_n0);
        for &(u, _) in &coupling[v] {
            ensure_probe(scenario, u, &mut probe, &mut probe_worker, &mut arena, &mut probe_n0);
        }

        // Interference superposition at receiver v under the final plan,
        // mixed in the same fixed ascending-transmitter order (and with the
        // same per-edge gains) as the measurement phase.
        mix.clear();
        mix.resize(arena.record(v).len(), Complex::ZERO);
        let any = !coupling[v].is_empty();
        for &(u, gain) in &coupling[v] {
            accumulate_scaled(&mut mix, arena.record(u), gain);
        }
        let p_own = mean_power(arena.record(v)).max(1e-300);
        let p_intf = if any { mean_power(&mix) } else { 0.0 };
        let interference_rel_db = if p_intf > 0.0 {
            10.0 * (p_intf / p_own).log10()
        } else {
            f64::NEG_INFINITY
        };

        // Spectral measurement over own signal + interference (optional:
        // the Welch PSD dominates plan time on large networks).
        let spectral = if scenario.probe_spectral {
            accumulate_scaled(&mut mix, arena.record(v), 1.0);
            monitor.analyze(&mix, fs_hz)
        } else {
            InterfererReport {
                detected: false,
                frequency: Hertz::new(0.0),
                peak_to_floor_db: 0.0,
                relative_power_db: f64::NEG_INFINITY,
            }
        };

        // Adaptation: probe-measured SINR → operating point. The noise
        // power per complex sample is n0 (two-sided, I+Q), so the SNR
        // degradation from interference is (N + I) / N.
        let mut config = scenario.base_config.clone();
        config.channel = channels[v];
        let operating = if scenario.adapt {
            let p_noise = probe_n0[v].max(1e-300);
            let degradation_db = 10.0 * (1.0 + p_intf / p_noise).log10();
            let conditions = ChannelConditions {
                snr_db: scenario.ebn0_db - degradation_db,
                delay_spread_ns: delay_ns,
                interferer_present: spectral.detected || any,
            };
            // Evaluate the trade curve around the measured point (buffer
            // reused across links — `trade_curve_into` keeps this loop
            // allocation-free once warm) and adopt the adapter's choice.
            adapter.trade_curve_into(
                &[
                    conditions.snr_db - 4.0,
                    conditions.snr_db,
                    conditions.snr_db + 4.0,
                ],
                delay_ns,
                &mut curve,
            );
            let op = adapter.adapt(&conditions);
            config = Gen2ConfigWithChannel(op.config.clone(), channels[v]).into_config();
            config.validate().expect("adapted config");
            Some(op)
        } else {
            None
        };

        entries.push(NetLinkPlan {
            scenario: LinkScenario {
                config,
                channel: scenario.channel_model,
                ebn0_db: scenario.ebn0_db,
                interferer: None,
                notch_enabled: false,
                seed: link_seed(scenario.seed, v),
            },
            channel: channels[v],
            interference_rel_db,
            spectral,
            operating,
        });

        // Recycle every probe record whose last reader was this victim.
        arena.release_expired(&schedule, v);
    }

    NetPlan {
        links: entries,
        coupling,
        payload_len: scenario.payload_len,
        block_len: scenario.block_len,
        rounds: scenario.rounds,
        seed: scenario.seed,
    }
}

/// Synthesizes link `u`'s clean probe record into the arena if it is not
/// already resident. Probes always run on the base config, so one shared
/// worker serves every link; each record is a pure function of the link's
/// decorrelated seed, so the lazy first-use order produces exactly the
/// records the old eager 0..n sweep did.
fn ensure_probe(
    scenario: &NetScenario,
    u: usize,
    probe: &mut LinkScenario,
    worker: &mut LinkWorker,
    arena: &mut RecordArena,
    probe_n0: &mut [f64],
) {
    if arena.is_resident(u) {
        return;
    }
    probe.seed = link_seed(scenario.seed, u);
    let mut rng = Rand::for_trial(probe.seed, PROBE_ROUND);
    let clean = worker.synthesize_clean_streamed_record(
        probe,
        scenario.payload_len,
        scenario.block_len,
        &mut rng,
        arena.acquire(u),
    );
    probe_n0[u] = clean.n0;
}

/// Tiny helper keeping the channel assignment authoritative over whatever
/// channel the adapter's base config carried.
struct Gen2ConfigWithChannel(uwb_phy::Gen2Config, Channel);

impl Gen2ConfigWithChannel {
    fn into_config(self) -> uwb_phy::Gen2Config {
        let mut c = self.0;
        c.channel = self.1;
        c
    }
}

/// Executes the scenario's channel-allocation policy.
fn allocate_channels(scenario: &NetScenario) -> Vec<Channel> {
    let n = scenario.len();
    match &scenario.policy {
        ChannelPolicy::Static(chs) | ChannelPolicy::RoundRobin(chs) => {
            assert!(!chs.is_empty(), "channel policy needs candidates");
            (0..n).map(|l| chs[l % chs.len()]).collect()
        }
        ChannelPolicy::InterferenceAware(candidates) => {
            assert!(!candidates.is_empty(), "channel policy needs candidates");
            // The greedy policy compares *measured* interference mixes on
            // every (candidate, assigned) pair, so it materializes the full
            // O(N) probe-record table and scans O(N²) pairs — a planning
            // policy for small networks, kept dense by design. Large
            // networks use the static policies, which are free.
            let probes: Vec<Vec<Complex>> = (0..n)
                .map(|l| {
                    let ps = LinkScenario {
                        config: scenario.base_config.clone(),
                        channel: scenario.channel_model,
                        ebn0_db: scenario.ebn0_db,
                        interferer: None,
                        notch_enabled: false,
                        seed: link_seed(scenario.seed, l),
                    };
                    let mut worker = LinkWorker::new(&ps);
                    let mut rng = Rand::for_trial(ps.seed, PROBE_ROUND);
                    worker.synthesize_clean_streamed(
                        &ps,
                        scenario.payload_len,
                        scenario.block_len,
                        &mut rng,
                    );
                    worker.clean_record().to_vec()
                })
                .collect();
            let mut assigned: Vec<Channel> = Vec::with_capacity(n);
            let mut mix = Vec::new();
            for v in 0..n {
                let mut best = candidates[0];
                let mut best_power = f64::INFINITY;
                for &cand in candidates {
                    // Measured interference power at v on this candidate:
                    // superpose the already-assigned transmitters' probe
                    // waveforms through the coupling model and measure.
                    mix.clear();
                    mix.resize(probes[v].len(), Complex::ZERO);
                    let mut any = false;
                    for (u, &ch_u) in assigned.iter().enumerate() {
                        if let Some(db) = coupling_db(
                            &scenario.topology,
                            &scenario.selectivity,
                            u,
                            ch_u,
                            v,
                            cand,
                        ) {
                            accumulate_scaled(&mut mix, &probes[u], 10f64.powf(db / 20.0));
                            any = true;
                        }
                    }
                    let p = if any { mean_power(&mix) } else { 0.0 };
                    if p < best_power {
                        best_power = p;
                        best = cand;
                    }
                }
                assigned.push(best);
            }
            assigned
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::topology::Topology;

    #[test]
    fn link_seeds_are_decorrelated() {
        let s0 = link_seed(42, 0);
        let s1 = link_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(s0, 42);
        // Different master seeds move every link seed.
        assert_ne!(link_seed(43, 0), s0);
    }

    #[test]
    fn round_robin_assignment_cycles() {
        let mut sc = NetScenario::ring(5, 8.0, 1);
        sc.policy = ChannelPolicy::RoundRobin(vec![
            Channel::new(0).unwrap(),
            Channel::new(5).unwrap(),
            Channel::new(10).unwrap(),
        ]);
        sc.rounds = 1;
        let plan = plan_network(&sc);
        let idx: Vec<usize> = plan.links.iter().map(|l| l.channel.index()).collect();
        assert_eq!(idx, vec![0, 5, 10, 0, 5]);
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn static_assignment_sets_config_channel() {
        let mut sc = NetScenario::ring(2, 8.0, 2);
        sc.policy = ChannelPolicy::Static(vec![Channel::new(7).unwrap()]);
        sc.rounds = 1;
        let plan = plan_network(&sc);
        for l in &plan.links {
            assert_eq!(l.channel.index(), 7);
            assert_eq!(l.scenario.config.channel.index(), 7);
        }
        // Co-channel pair: each receiver sees the other transmitter.
        assert_eq!(plan.coupling[0], vec![(1, plan.coupling[0][0].1)]);
        assert!(plan.coupling[0][0].1 > 0.0);
    }

    #[test]
    fn interference_aware_spreads_co_located_links() {
        // Two tightly packed links: the greedy policy must not put the
        // second on the first's channel when a far channel is available.
        let mut sc = NetScenario::ring(2, 8.0, 3);
        sc.topology = Topology::ring(2, 0.5, 1.0);
        sc.policy = ChannelPolicy::InterferenceAware(vec![
            Channel::new(3).unwrap(),
            Channel::new(9).unwrap(),
        ]);
        sc.rounds = 1;
        let plan = plan_network(&sc);
        assert_eq!(plan.links[0].channel.index(), 3, "first pick: first candidate");
        assert_eq!(plan.links[1].channel.index(), 9, "second link must dodge");
        assert!(plan.coupling.iter().all(|r| r.is_empty()));
        assert_eq!(plan.links[1].interference_rel_db, f64::NEG_INFINITY);
    }

    #[test]
    fn adaptation_produces_valid_operating_points() {
        let mut sc = NetScenario::ring(4, 6.0, 4);
        sc.adapt = true;
        sc.policy = ChannelPolicy::Static(vec![Channel::new(3).unwrap()]);
        sc.rounds = 1;
        let plan = plan_network(&sc);
        for l in &plan.links {
            let op = l.operating.as_ref().expect("adapted");
            op.config.validate().unwrap();
            assert_eq!(l.scenario.config.channel, l.channel);
            // All-co-channel, everyone sees interference.
            assert!(op.rationale.contains("interferer"), "{}", op.rationale);
            assert!(l.interference_rel_db.is_finite());
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let sc = NetScenario::ring(6, 8.0, 77);
        let a = plan_network(&sc);
        let b = plan_network(&sc);
        assert_eq!(a.coupling, b.coupling);
        for (x, y) in a.links.iter().zip(b.links.iter()) {
            assert_eq!(x.channel, y.channel);
            assert_eq!(x.scenario.seed, y.scenario.seed);
            assert_eq!(
                x.interference_rel_db.to_bits(),
                y.interference_rel_db.to_bits()
            );
        }
    }
}
