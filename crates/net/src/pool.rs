//! Config-deduplicated [`LinkWorker`] pool shared by the measurement
//! runners.
//!
//! A [`LinkWorker`] only carries *configuration-shaped* machinery — the
//! transmitter, the streaming channel, receiver scratch — while everything
//! per-round (waveform records, payload snapshots) lives in the caller's
//! storage. A pool therefore holds one worker per **distinct**
//! [`Gen2Config`] rather than one per link: a 10 000-link network on a
//! round-robin channel policy costs 14 workers, not 10 000.
//!
//! This used to be private to [`crate::runner::NetWorker`]; it is a module
//! of its own so that event-driven layers above the network round machinery
//! (the `uwb-mac` discrete-event simulator, which synthesizes and decodes
//! transmissions for event-selected link subsets rather than whole rounds)
//! can share the exact same pooling discipline.

use crate::controller::NetPlan;
use uwb_phy::Gen2Config;
use uwb_platform::link::LinkWorker;

/// One [`LinkWorker`] per distinct link configuration in a [`NetPlan`],
/// plus the link → worker index map.
pub struct WorkerPool {
    workers: Vec<LinkWorker>,
    /// Per link: index of its configuration's worker in `workers`.
    config_of: Vec<u32>,
}

impl WorkerPool {
    /// Builds the pool from the frozen plan: one worker per distinct
    /// `Gen2Config`, in first-appearance (ascending link) order.
    pub fn new(plan: &NetPlan) -> Self {
        let n = plan.len();
        let mut workers: Vec<LinkWorker> = Vec::new();
        let mut pool_configs: Vec<&Gen2Config> = Vec::new();
        let mut config_of = Vec::with_capacity(n);
        for l in &plan.links {
            let cfg = &l.scenario.config;
            let id = match pool_configs.iter().position(|c| *c == cfg) {
                Some(i) => i,
                None => {
                    pool_configs.push(cfg);
                    workers.push(LinkWorker::new(&l.scenario));
                    pool_configs.len() - 1
                }
            };
            config_of.push(id as u32);
        }
        WorkerPool { workers, config_of }
    }

    /// Number of links the pool serves.
    pub fn links(&self) -> usize {
        self.config_of.len()
    }

    /// Number of distinct workers (= distinct configurations).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The pool index of link `l`'s configuration.
    pub fn config_index(&self, l: usize) -> usize {
        self.config_of[l] as usize
    }

    /// The shared worker serving link `l`'s configuration.
    pub fn worker_for(&mut self, l: usize) -> &mut LinkWorker {
        &mut self.workers[self.config_of[l] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::plan_network;
    use crate::scenario::{ChannelPolicy, NetScenario};
    use uwb_phy::bandplan::Channel;

    #[test]
    fn pool_deduplicates_by_config() {
        // 6 links round-robin over 3 channels -> 3 distinct configs.
        let mut sc = NetScenario::ring(6, 8.0, 7);
        sc.probe_spectral = false;
        sc.policy = ChannelPolicy::RoundRobin(
            (3..6).map(|i| Channel::new(i).unwrap()).collect(),
        );
        let plan = plan_network(&sc);
        let pool = WorkerPool::new(&plan);
        assert_eq!(pool.links(), 6);
        assert_eq!(pool.worker_count(), 3);
        // Links sharing a channel share a worker.
        assert_eq!(pool.config_index(0), pool.config_index(3));
        assert_eq!(pool.config_index(1), pool.config_index(4));
        assert_ne!(pool.config_index(0), pool.config_index(1));
    }
}
