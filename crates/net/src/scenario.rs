//! Network scenario specification.
//!
//! A [`NetScenario`] describes a piconet: N transmitter→receiver pairs on a
//! floor plan, a channel-allocation policy over the 14-channel band plan, a
//! shared impairment environment, and the measurement schedule (rounds). It
//! is the *input* to [`crate::controller::plan_network`]; everything the
//! measurement phase touches lives in the derived, static
//! [`crate::controller::NetPlan`].

use crate::coupling::CouplingParams;
use uwb_phy::bandplan::Channel;
use uwb_phy::Gen2Config;
use uwb_platform::link::DEFAULT_STREAM_BLOCK;
use uwb_rf::ChannelSelectivity;
use uwb_sim::sv_channel::ChannelModel;
use uwb_sim::topology::Topology;

/// How links are placed onto band-plan channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelPolicy {
    /// Explicit assignment: link `l` gets `channels[l % channels.len()]`.
    Static(Vec<Channel>),
    /// Cycle through the candidate list in link order — the simplest
    /// load-spreading policy.
    RoundRobin(Vec<Channel>),
    /// Greedy measured-interference assignment: links are assigned in index
    /// order; each link probes every candidate channel by *mixing the
    /// already-assigned co-/adjacent-channel transmitters' clean waveforms
    /// at its receiver* and picks the channel with the least measured
    /// interference power (ties break toward the lower channel index). The
    /// winning superposition is also analyzed with
    /// `uwb_phy::spectral::SpectralMonitor`, and the report feeds the link
    /// adapter's `interferer_present` flag.
    InterferenceAware(Vec<Channel>),
}

impl ChannelPolicy {
    /// Round-robin over the full 14-channel grid.
    pub fn round_robin_all() -> ChannelPolicy {
        ChannelPolicy::RoundRobin(Channel::all().collect())
    }
}

/// A complete multi-link network scenario.
#[derive(Debug, Clone)]
pub struct NetScenario {
    /// Base PHY configuration shared by every link (the controller may
    /// adapt per-link copies; the assigned channel is always written into
    /// each link's config).
    pub base_config: Gen2Config,
    /// Floor-plan geometry: one [`uwb_sim::topology::LinkGeometry`] per
    /// link. The topology's length is the network size.
    pub topology: Topology,
    /// Multipath environment shared by all links (fresh realization per
    /// link per round).
    pub channel_model: ChannelModel,
    /// Per-link Eb/N0 in dB (receiver noise calibration, identical for all
    /// links — interference asymmetry comes from geometry + channels).
    pub ebn0_db: f64,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Streaming block length in samples.
    pub block_len: usize,
    /// Measurement rounds. Each round, every link transmits one packet
    /// simultaneously; round `r` is Monte-Carlo trial `r`.
    pub rounds: u64,
    /// Master seed. Link `l` derives its own decorrelated seed; round `r`
    /// of link `l` runs on `Rand::for_trial(link_seed(l), r)`.
    pub seed: u64,
    /// Channel-allocation policy.
    pub policy: ChannelPolicy,
    /// Run the closed-loop [`uwb_phy::LinkAdapter`] per link during
    /// planning (probe-measured SINR → config).
    pub adapt: bool,
    /// Front-end adjacent-channel selectivity model.
    pub selectivity: ChannelSelectivity,
    /// Sparse interference-graph parameters: the total-coupling floor,
    /// optional per-receiver edge cap, and spatial-grid cell size. The
    /// default ([`CouplingParams::default`]) reproduces the classic dense
    /// semantics bit-for-bit — only the front end's spectral floor drops
    /// edges.
    pub coupling: CouplingParams,
    /// Run the Welch [`uwb_phy::SpectralMonitor`] over each receiver's
    /// probe superposition during planning. On by default; large networks
    /// turn it off because the per-link PSD dominates plan time and its
    /// result only feeds planning diagnostics (the adapter's
    /// `interferer_present` flag falls back to the coupling graph).
    pub probe_spectral: bool,
}

impl NetScenario {
    /// An `n`-user piconet on the default ring layout (4 m ring, 1 m
    /// links), AWGN multipath, round-robin over all 14 channels, gen2
    /// selectivity, adaptation off. `preamble_repeats` is reduced to 2
    /// (the repo's fast-test configuration).
    pub fn ring(n: usize, ebn0_db: f64, seed: u64) -> NetScenario {
        NetScenario {
            base_config: Gen2Config {
                preamble_repeats: 2,
                ..Gen2Config::nominal_100mbps()
            },
            topology: Topology::ring(n, 4.0, 1.0),
            channel_model: ChannelModel::Awgn,
            ebn0_db,
            payload_len: 32,
            block_len: DEFAULT_STREAM_BLOCK,
            rounds: 25,
            seed,
            policy: ChannelPolicy::round_robin_all(),
            adapt: false,
            selectivity: ChannelSelectivity::gen2(),
            coupling: CouplingParams::default(),
            probe_spectral: true,
        }
    }

    /// A clustered "city" piconet: `clusters × per_cluster` links on the
    /// [`Topology::clustered`] floor plan (20 m cluster pitch, 3 m cluster
    /// radius, 1 m links), round-robin channels, and a finite coupling
    /// floor so the interference graph stays sparse. Spectral probing is
    /// off — this is the constructor for large-N scaling runs.
    pub fn clustered_city(clusters: usize, per_cluster: usize, ebn0_db: f64, seed: u64) -> NetScenario {
        let mut sc = NetScenario::ring(1, ebn0_db, seed);
        sc.topology = Topology::clustered(clusters, per_cluster, 20.0, 3.0, 1.0, seed);
        sc.coupling.floor_db = -40.0;
        sc.probe_spectral = false;
        sc
    }

    /// Enables convolutional coding on every link: the base config's
    /// payload is encoded with `code` at the transmitter and soft-decision
    /// Viterbi decoded at the receiver (rate 1/2, so [`Gen2Config::bit_rate`]
    /// halves). The per-link planning/adaptation machinery carries the FEC
    /// flag through unchanged — this is the `NetScenario`-level switch for
    /// the paper's "Viterbi demodulator" coding-gain knob.
    pub fn with_fec(mut self, code: uwb_phy::fec::ConvCode) -> NetScenario {
        self.base_config.fec = Some(code);
        self
    }

    /// Number of links (the topology's length).
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// `true` when the scenario has no links.
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_fec_halves_bit_rate_and_runs_end_to_end() {
        let uncoded_rate = NetScenario::ring(2, 10.0, 77).base_config.bit_rate();
        let sc = NetScenario::ring(2, 10.0, 77).with_fec(uwb_phy::fec::ConvCode::k7());
        assert_eq!(
            sc.base_config.bit_rate(),
            uncoded_rate / 2.0,
            "rate-1/2 FEC halves the information bit rate"
        );
        // A coded network round runs the full encode -> superpose -> soft
        // Viterbi decode chain without error.
        let mut sc = sc;
        sc.rounds = 1;
        sc.probe_spectral = false;
        let report = crate::runner::run_network(&sc);
        assert_eq!(report.len(), 2);
        assert!(report.links.iter().all(|l| l.packets == 1));
        assert!(report.links.iter().all(|l| l.counter.total > 0));
    }

    #[test]
    fn ring_scenario_defaults() {
        let sc = NetScenario::ring(8, 8.0, 42);
        assert_eq!(sc.len(), 8);
        assert!(!sc.is_empty());
        assert_eq!(sc.base_config.preamble_repeats, 2);
        assert_eq!(sc.block_len, DEFAULT_STREAM_BLOCK);
        match &sc.policy {
            ChannelPolicy::RoundRobin(chs) => assert_eq!(chs.len(), 14),
            other => panic!("unexpected policy {other:?}"),
        }
    }
}
