//! Network scenario specification.
//!
//! A [`NetScenario`] describes a piconet: N transmitter→receiver pairs on a
//! floor plan, a channel-allocation policy over the 14-channel band plan, a
//! shared impairment environment, and the measurement schedule (rounds). It
//! is the *input* to [`crate::controller::plan_network`]; everything the
//! measurement phase touches lives in the derived, static
//! [`crate::controller::NetPlan`].

use uwb_phy::bandplan::Channel;
use uwb_phy::Gen2Config;
use uwb_platform::link::DEFAULT_STREAM_BLOCK;
use uwb_rf::ChannelSelectivity;
use uwb_sim::sv_channel::ChannelModel;
use uwb_sim::topology::Topology;

/// How links are placed onto band-plan channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelPolicy {
    /// Explicit assignment: link `l` gets `channels[l % channels.len()]`.
    Static(Vec<Channel>),
    /// Cycle through the candidate list in link order — the simplest
    /// load-spreading policy.
    RoundRobin(Vec<Channel>),
    /// Greedy measured-interference assignment: links are assigned in index
    /// order; each link probes every candidate channel by *mixing the
    /// already-assigned co-/adjacent-channel transmitters' clean waveforms
    /// at its receiver* and picks the channel with the least measured
    /// interference power (ties break toward the lower channel index). The
    /// winning superposition is also analyzed with
    /// `uwb_phy::spectral::SpectralMonitor`, and the report feeds the link
    /// adapter's `interferer_present` flag.
    InterferenceAware(Vec<Channel>),
}

impl ChannelPolicy {
    /// Round-robin over the full 14-channel grid.
    pub fn round_robin_all() -> ChannelPolicy {
        ChannelPolicy::RoundRobin(Channel::all().collect())
    }
}

/// A complete multi-link network scenario.
#[derive(Debug, Clone)]
pub struct NetScenario {
    /// Base PHY configuration shared by every link (the controller may
    /// adapt per-link copies; the assigned channel is always written into
    /// each link's config).
    pub base_config: Gen2Config,
    /// Floor-plan geometry: one [`uwb_sim::topology::LinkGeometry`] per
    /// link. The topology's length is the network size.
    pub topology: Topology,
    /// Multipath environment shared by all links (fresh realization per
    /// link per round).
    pub channel_model: ChannelModel,
    /// Per-link Eb/N0 in dB (receiver noise calibration, identical for all
    /// links — interference asymmetry comes from geometry + channels).
    pub ebn0_db: f64,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Streaming block length in samples.
    pub block_len: usize,
    /// Measurement rounds. Each round, every link transmits one packet
    /// simultaneously; round `r` is Monte-Carlo trial `r`.
    pub rounds: u64,
    /// Master seed. Link `l` derives its own decorrelated seed; round `r`
    /// of link `l` runs on `Rand::for_trial(link_seed(l), r)`.
    pub seed: u64,
    /// Channel-allocation policy.
    pub policy: ChannelPolicy,
    /// Run the closed-loop [`uwb_phy::LinkAdapter`] per link during
    /// planning (probe-measured SINR → config).
    pub adapt: bool,
    /// Front-end adjacent-channel selectivity model.
    pub selectivity: ChannelSelectivity,
}

impl NetScenario {
    /// An `n`-user piconet on the default ring layout (4 m ring, 1 m
    /// links), AWGN multipath, round-robin over all 14 channels, gen2
    /// selectivity, adaptation off. `preamble_repeats` is reduced to 2
    /// (the repo's fast-test configuration).
    pub fn ring(n: usize, ebn0_db: f64, seed: u64) -> NetScenario {
        NetScenario {
            base_config: Gen2Config {
                preamble_repeats: 2,
                ..Gen2Config::nominal_100mbps()
            },
            topology: Topology::ring(n, 4.0, 1.0),
            channel_model: ChannelModel::Awgn,
            ebn0_db,
            payload_len: 32,
            block_len: DEFAULT_STREAM_BLOCK,
            rounds: 25,
            seed,
            policy: ChannelPolicy::round_robin_all(),
            adapt: false,
            selectivity: ChannelSelectivity::gen2(),
        }
    }

    /// Number of links (the topology's length).
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// `true` when the scenario has no links.
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_scenario_defaults() {
        let sc = NetScenario::ring(8, 8.0, 42);
        assert_eq!(sc.len(), 8);
        assert!(!sc.is_empty());
        assert_eq!(sc.base_config.preamble_repeats, 2);
        assert_eq!(sc.block_len, DEFAULT_STREAM_BLOCK);
        match &sc.policy {
            ChannelPolicy::RoundRobin(chs) => assert_eq!(chs.len(), 14),
            other => panic!("unexpected policy {other:?}"),
        }
    }
}
