//! # uwb-net — deterministic multi-user piconet simulation
//!
//! The paper's direct-conversion pulsed UWB transceiver lives on a
//! 14-channel × 528 MHz band plan precisely so that multiple piconets can
//! operate concurrently. This crate simulates that situation: N
//! transmitter→receiver links on a floor plan, each running the full gen2
//! streaming signal chain, with every receiver decoding its packet out of
//! the superposition of
//!
//! * its **own** clean waveform,
//! * every **co-channel / adjacent-channel** foreign waveform, scaled by
//!   the geometry (near–far path-loss difference) and the front end's
//!   finite adjacent-channel selectivity, and
//! * its calibrated receiver noise.
//!
//! ## Determinism contracts
//!
//! 1. **Thread invariance** — one measurement *round* (all links transmit
//!    once) is one Monte-Carlo trial on [`uwb_sim::montecarlo`]'s
//!    ordered-merge engine: per-link error counters are bit-identical for
//!    any `UWB_THREADS`.
//! 2. **Isolation parity** — a link whose channel is beyond the front
//!    end's selectivity floor from every other link is **bit-identical**
//!    to the same link run alone through
//!    [`uwb_platform::link::run_ber_fast_streamed_budgeted`].
//! 3. **Zero warm-path allocation** — all per-round buffers live in
//!    [`runner::NetWorker`] and are reused.
//!
//! ## Layers
//!
//! * [`scenario`] — [`NetScenario`]: topology, channel policy, impairments
//! * [`coupling`] — the spatial × spectral coupling model
//! * [`controller`] — serial planning phase: probing, channel allocation
//!   (static / round-robin / interference-aware), closed-loop adaptation;
//!   frozen into a [`NetPlan`]
//! * [`runner`] — parallel measurement phase on the Monte-Carlo engine
//! * [`report`] — per-link BER/PER/goodput + aggregate throughput
//!
//! # Example: an 8-user piconet
//!
//! ```
//! use uwb_net::{run_network, NetScenario};
//!
//! let mut scenario = NetScenario::ring(8, 9.0, 42);
//! scenario.rounds = 2;
//! let report = run_network(&scenario);
//! assert_eq!(report.len(), 8);
//! assert!(report.aggregate_throughput_bps > 0.0);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod controller;
pub mod coupling;
pub mod pool;
pub mod report;
pub mod runner;
pub mod scenario;

pub use arena::{RecordArena, RecordSchedule};
pub use controller::{link_seed, plan_network, NetLinkPlan, NetPlan};
pub use coupling::{
    build_coupling, build_coupling_sparse, coupling_db, sense_sets, CouplingParams, CouplingRow,
};
pub use pool::WorkerPool;
pub use report::{LinkReport, NetReport};
pub use runner::{
    run_network, run_plan, run_plan_threads, LinkRoundStats, NetAccumulator, NetWorker,
};
pub use scenario::{ChannelPolicy, NetScenario};
