//! The measurement phase: replaying a frozen [`NetPlan`] on the
//! deterministic parallel Monte-Carlo engine.
//!
//! One engine *trial* is one network *round*: every link transmits one
//! packet simultaneously; every receiver decodes its own packet out of the
//! superposition of its clean waveform, every coupled foreign waveform
//! (fixed ascending-transmitter mixing order), and its calibrated receiver
//! noise. Rounds are independent by construction — all per-round state is
//! re-derived from `Rand::for_trial(link_seed, round)` — so the engine's
//! ordered-prefix merge makes the whole network run bit-identical for any
//! `UWB_THREADS`.
//!
//! Rounds are **event-driven** over the sparse interference graph: victims
//! are processed in ascending order; each transmitter's clean waveform is
//! synthesized lazily (once per round, at its first reader) into a slot of
//! the shared [`RecordArena`] and recycled after its last reader, so peak
//! waveform memory is the graph's overlap width rather than N records. An
//! isolated victim — empty coupling row, record unread by anyone else —
//! skips the mix-buffer copy entirely and takes its receiver noise in
//! place, which is what makes idle links and isolated clusters nearly
//! free.
//!
//! The warm path allocates nothing: the config-deduplicated worker pool,
//! the arena slots, the mix buffer, and the per-round synthesis metadata
//! all live in [`NetWorker`] and are reused round after round (the arena's
//! slot-acquisition sequence is identical every round, so each slot
//! ratchets to its high-water capacity during round 0).

use crate::arena::{RecordArena, RecordSchedule};
use crate::controller::{plan_network, NetPlan};
use crate::report::{LinkReport, NetReport};
use crate::scenario::NetScenario;
use uwb_dsp::scratch::DspScratch;
use uwb_dsp::stream::accumulate_scaled;
use uwb_dsp::Complex;
use uwb_platform::link::{BatchScratch, CleanSynthesis};
use uwb_platform::metrics::ErrorCounter;
use uwb_sim::montecarlo::{Merge, MonteCarlo};
use uwb_sim::stream::StreamingAwgn;
use uwb_sim::Rand;

/// Per-link error statistics accumulated over measurement rounds.
#[derive(Debug, Clone, Default)]
pub struct LinkRoundStats {
    /// Bit-level error counter (known-timing BER).
    pub ber: ErrorCounter,
    /// Packets attempted (= rounds contributing to the merge).
    pub packets: u64,
    /// Packets with at least one bit error or a decode failure.
    pub packets_bad: u64,
}

impl LinkRoundStats {
    /// Packet error rate over the contributing rounds.
    ///
    /// `NaN` when no packets were attempted — same no-data contract as
    /// [`ErrorCounter::rate`]: "no packets" is *not knowing* the PER, which
    /// must stay distinguishable from a measured PER of zero.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            f64::NAN
        } else {
            self.packets_bad as f64 / self.packets as f64
        }
    }
}

impl Merge for LinkRoundStats {
    fn merge(&mut self, other: &Self) {
        self.ber.merge(&other.ber);
        self.packets += other.packets;
        self.packets_bad += other.packets_bad;
    }
}

/// The engine's merge accumulator: one [`LinkRoundStats`] per link.
///
/// `Merge for Vec<T>` in the engine is *concatenation* (stream semantics),
/// which is wrong here — network rounds must merge **element-wise** per
/// link. The empty-default case (a fresh chunk accumulator) adopts the
/// other side wholesale.
#[derive(Debug, Clone, Default)]
pub struct NetAccumulator {
    /// Per-link statistics, indexed by link id.
    pub links: Vec<LinkRoundStats>,
}

impl NetAccumulator {
    /// Ensures `links` holds exactly `n` entries (idempotent).
    fn ensure_len(&mut self, n: usize) {
        if self.links.len() < n {
            self.links.resize(n, LinkRoundStats::default());
        }
    }
}

impl Merge for NetAccumulator {
    fn merge(&mut self, other: &Self) {
        if self.links.is_empty() {
            self.links.extend_from_slice(&other.links);
            return;
        }
        assert_eq!(
            self.links.len(),
            other.links.len(),
            "network accumulators must cover the same links"
        );
        for (a, b) in self.links.iter_mut().zip(&other.links) {
            a.merge(b);
        }
    }
}

/// Per-thread measurement state: a config-deduplicated [`LinkWorker`] pool,
/// the shared-waveform arena with its liveness schedule, and the reusable
/// mixing buffers. Constructed once per engine worker; everything warm is
/// allocation-free.
///
/// The pool ([`crate::pool::WorkerPool`]) holds one worker per **distinct**
/// `Gen2Config` rather than one per link — a worker only carries
/// configuration-shaped machinery (transmitter, streaming channel, receiver
/// scratch), while the per-round waveforms live in the arena and the
/// per-link payload snapshots in `payloads`. A 10 000-link network on a
/// round-robin policy therefore costs 14 workers, not 10 000.
pub struct NetWorker {
    pool: crate::pool::WorkerPool,
    schedule: RecordSchedule,
    arena: RecordArena,
    /// Per link: this round's synthesis metadata (slot-0 index, calibrated
    /// n0, AWGN RNG), set at lazy synthesis and taken at decode.
    clean: Vec<Option<CleanSynthesis>>,
    /// Per link: payload snapshot taken right after synthesis, handed back
    /// to the (shared) worker at decode time.
    payloads: Vec<Vec<u8>>,
    /// Per link: mean power of this round's clean record (cached at
    /// synthesis, read by every victim that mixes it for its SINR digest).
    power: Vec<f64>,
    mixed: Vec<Complex>,
    scratch: DspScratch,
    /// Shared batched-runtime scratch: every pooled worker digitizes into
    /// this one arena at decode time (one warm buffer for the whole pool
    /// instead of one per `RxState`).
    batch: BatchScratch,
}

impl NetWorker {
    /// Builds the pooled workers, liveness schedule, and arena from the
    /// frozen plan.
    pub fn new(plan: &NetPlan) -> Self {
        let n = plan.len();
        let pool = crate::pool::WorkerPool::new(plan);
        let schedule = RecordSchedule::build(n, &plan.coupling);
        let arena = RecordArena::new(n, schedule.max_live());
        NetWorker {
            pool,
            schedule,
            arena,
            clean: (0..n).map(|_| None).collect(),
            payloads: vec![Vec::new(); n],
            power: vec![0.0; n],
            mixed: Vec::new(),
            scratch: DspScratch::new(),
            batch: BatchScratch::new(),
        }
    }

    /// Synthesizes link `u`'s clean record for this round into an arena
    /// slot if it is not already resident, snapshotting the payload the
    /// shared worker drew. Every record is a pure function of
    /// `(link_seed(u), round)`, so the lazy first-reader order produces
    /// exactly the waveforms an eager 0..n sweep would.
    fn ensure_record(&mut self, plan: &NetPlan, round: u64, u: usize) {
        if self.arena.is_resident(u) {
            return;
        }
        let _t = uwb_obs::span!("net_schedule");
        let mut rng = Rand::for_trial(plan.link_seed(u), round);
        let worker = self.pool.worker_for(u);
        let clean = worker.synthesize_clean_streamed_record(
            &plan.links[u].scenario,
            plan.payload_len,
            plan.block_len,
            &mut rng,
            self.arena.acquire(u),
        );
        self.payloads[u].clear();
        self.payloads[u].extend_from_slice(worker.payload_bytes());
        self.power[u] = uwb_dsp::simd::mean_power(self.arena.record(u));
        self.clean[u] = Some(clean);
    }

    /// Runs one network round (= one engine trial) and accumulates every
    /// link's outcome into `acc`.
    ///
    /// Victims are processed in ascending order. Per victim: materialize
    /// the records its coupling row needs (`net_schedule`, lazy, shared),
    /// mix own + coupled foreign records + calibrated AWGN in fixed
    /// ascending-transmitter order (`net_mix`), decode and count
    /// (`net_rx`), then recycle every record this victim read last. An
    /// isolated victim takes its noise in place on its own record and
    /// never touches the mix buffer.
    pub fn round(&mut self, plan: &NetPlan, round: u64, acc: &mut NetAccumulator) {
        let n = plan.len();
        acc.ensure_len(n);
        for c in &mut self.clean {
            *c = None;
        }

        let mut round_errs = 0u64;
        let mut round_bad = 0u64;
        for v in 0..n {
            self.ensure_record(plan, round, v);
            for &(u, _) in &plan.coupling[v] {
                self.ensure_record(plan, round, u);
            }
            let CleanSynthesis {
                slot0_start,
                n0,
                awgn_rng,
            } = self.clean[v].take().expect("own record just ensured");

            let row = &plan.coupling[v];
            // Per-victim round SINR: own clean power over coupled foreign
            // power (plan gains are amplitude factors → power scales by
            // gain²) plus the calibrated per-sample receiver noise power.
            // Centi-dB with a +100 dB offset keeps the u64 digest monotonic
            // across the practical [-100, +84] dB range.
            let interference: f64 = row
                .iter()
                .map(|&(u, gain)| gain * gain * self.power[u])
                .sum();
            let sinr = self.power[v] / (interference + n0).max(f64::MIN_POSITIVE);
            let sinr_cdb = (10.0 * sinr.log10() + 100.0) * 100.0;
            uwb_obs::digest!("net_link_sinr_cdb", sinr_cdb.max(0.0) as u64);

            let stats = &mut acc.links[v];
            let errs_before = stats.ber.errors;
            stats.packets += 1;
            let config = &plan.links[v].scenario.config;
            let rx = self.pool.worker_for(v);
            let ok = if row.is_empty() && self.schedule.last_use(v) == v {
                // Isolated victim: nobody mixes this record and nobody else
                // reads it — apply receiver noise in place and decode from
                // the slot. Identical sample values to the general path
                // (copy + noise), minus the copy.
                {
                    let _t = uwb_obs::span!("net_mix");
                    let mut awgn = StreamingAwgn::new(n0, awgn_rng);
                    uwb_dsp::stream::BlockProcessor::process_block(
                        &mut awgn,
                        self.arena.record_mut(v),
                        &mut self.scratch,
                    );
                }
                let _t = uwb_obs::span!("net_rx");
                rx.count_errors_in_record_with_payload_batched(
                    config,
                    self.arena.record(v),
                    slot0_start,
                    &self.payloads[v],
                    &mut self.batch,
                    &mut stats.ber,
                )
            } else {
                {
                    let _t = uwb_obs::span!("net_mix");
                    self.mixed.clear();
                    self.mixed.extend_from_slice(self.arena.record(v));
                    // Fixed ascending-transmitter order: the summation order
                    // is part of the bit-exactness contract.
                    for &(u, gain) in row {
                        accumulate_scaled(&mut self.mixed, self.arena.record(u), gain);
                    }
                    // Receiver noise last, from the RNG state the single-link
                    // path would hold — an uncoupled link is bit-identical to
                    // an isolated streamed run.
                    let mut awgn = StreamingAwgn::new(n0, awgn_rng);
                    uwb_dsp::stream::BlockProcessor::process_block(
                        &mut awgn,
                        &mut self.mixed,
                        &mut self.scratch,
                    );
                }
                let _t = uwb_obs::span!("net_rx");
                rx.count_errors_in_record_with_payload_batched(
                    config,
                    &self.mixed,
                    slot0_start,
                    &self.payloads[v],
                    &mut self.batch,
                    &mut stats.ber,
                )
            };
            if !ok {
                stats.packets_bad += 1;
                round_bad += 1;
            }
            round_errs += stats.ber.errors - errs_before;
            self.arena.release_expired(&self.schedule, v);
        }
        // Finalize this round's flight-recorder snapshot: one network round
        // is one engine trial, scored by its network-wide bit-error total
        // (no-op unless the engine armed the trial).
        uwb_obs::note!("net_round_bad_packets", round_bad);
        uwb_obs::recorder::observe(round_errs, 0);
    }
}

/// Plans and measures a complete network scenario: serial planning phase
/// ([`plan_network`]), then `scenario.rounds` measurement rounds on the
/// deterministic parallel engine, then report assembly.
pub fn run_network(scenario: &NetScenario) -> NetReport {
    run_plan(plan_network(scenario))
}

/// Measurement phase over an externally supplied (possibly hand-edited)
/// plan. Worker count follows `UWB_THREADS` / available parallelism; the
/// per-link counters are bit-identical either way.
pub fn run_plan(plan: NetPlan) -> NetReport {
    run_plan_engine(plan, None)
}

/// [`run_plan`] with an explicit worker-thread override — the hook the
/// determinism tests use to compare thread counts within one process
/// without racing on the `UWB_THREADS` environment variable.
pub fn run_plan_threads(plan: NetPlan, threads: usize) -> NetReport {
    run_plan_engine(plan, Some(threads))
}

fn run_plan_engine(plan: NetPlan, threads: Option<usize>) -> NetReport {
    let mut engine = MonteCarlo::new(plan.seed, plan.rounds);
    if let Some(t) = threads {
        engine = engine.threads(t);
    }
    let outcome = engine.run(
        || NetWorker::new(&plan),
        |w: &mut NetWorker, round, _rng, acc: &mut NetAccumulator| w.round(&plan, round, acc),
        |_| false,
    );
    let mut acc = outcome.value;
    acc.ensure_len(plan.len());
    let links: Vec<LinkReport> = plan
        .links
        .iter()
        .zip(&acc.links)
        .map(|(l, s)| LinkReport::new(l, s))
        .collect();
    let mut stats = outcome.stats;
    // Per-link goodput digest, recorded after the workers joined (serial,
    // ascending link order → deterministic for any thread count) and folded
    // into the run's telemetry snapshot.
    for l in &links {
        uwb_obs::digest!("net_link_goodput_kbps", (l.throughput_bps / 1e3) as u64);
    }
    stats.telemetry.merge(&uwb_obs::take_thread_telemetry());
    NetReport::new(links, stats, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_round_stats_merge_is_elementwise() {
        let mut a = NetAccumulator::default();
        a.ensure_len(2);
        a.links[0].packets = 3;
        a.links[0].packets_bad = 1;
        a.links[1].packets = 3;
        let mut b = NetAccumulator::default();
        b.ensure_len(2);
        b.links[0].packets = 2;
        b.links[1].packets = 2;
        b.links[1].packets_bad = 2;
        a.merge(&b);
        assert_eq!(a.links.len(), 2, "element-wise, not concatenation");
        assert_eq!(a.links[0].packets, 5);
        assert_eq!(a.links[0].packets_bad, 1);
        assert_eq!(a.links[1].packets, 5);
        assert_eq!(a.links[1].packets_bad, 2);
    }

    #[test]
    fn empty_accumulator_adopts_other_side() {
        let mut a = NetAccumulator::default();
        let mut b = NetAccumulator::default();
        b.ensure_len(3);
        b.links[2].packets = 7;
        a.merge(&b);
        assert_eq!(a.links.len(), 3);
        assert_eq!(a.links[2].packets, 7);
    }

    #[test]
    fn per_distinguishes_no_data_from_zero_errors() {
        // No packets -> NaN (the ErrorCounter::rate no-data contract), NOT
        // 0.0: "never measured" must not read as "perfect".
        let s = LinkRoundStats::default();
        assert!(s.per().is_nan());
        let s = LinkRoundStats {
            packets: 4,
            packets_bad: 0,
            ..Default::default()
        };
        assert_eq!(s.per(), 0.0);
        let s = LinkRoundStats {
            packets: 4,
            packets_bad: 1,
            ..Default::default()
        };
        assert_eq!(s.per(), 0.25);
    }
}
