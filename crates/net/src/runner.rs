//! The measurement phase: replaying a frozen [`NetPlan`] on the
//! deterministic parallel Monte-Carlo engine.
//!
//! One engine *trial* is one network *round*: every link transmits one
//! packet simultaneously; every receiver decodes its own packet out of the
//! superposition of its clean waveform, every coupled foreign waveform
//! (fixed ascending-transmitter mixing order), and its calibrated receiver
//! noise. Rounds are independent by construction — all per-round state is
//! re-derived from `Rand::for_trial(link_seed, round)` — so the engine's
//! ordered-prefix merge makes the whole network run bit-identical for any
//! `UWB_THREADS`.
//!
//! The warm path allocates nothing: every buffer (per-link workers, the
//! mix buffer, the per-round clean-synthesis table) lives in [`NetWorker`]
//! and is reused round after round.

use crate::controller::{plan_network, NetPlan};
use crate::report::{LinkReport, NetReport};
use crate::scenario::NetScenario;
use uwb_dsp::scratch::DspScratch;
use uwb_dsp::stream::accumulate_scaled;
use uwb_dsp::Complex;
use uwb_platform::link::{CleanSynthesis, LinkWorker};
use uwb_platform::metrics::ErrorCounter;
use uwb_sim::montecarlo::{Merge, MonteCarlo};
use uwb_sim::stream::StreamingAwgn;
use uwb_sim::Rand;

/// Per-link error statistics accumulated over measurement rounds.
#[derive(Debug, Clone, Default)]
pub struct LinkRoundStats {
    /// Bit-level error counter (known-timing BER).
    pub ber: ErrorCounter,
    /// Packets attempted (= rounds contributing to the merge).
    pub packets: u64,
    /// Packets with at least one bit error or a decode failure.
    pub packets_bad: u64,
}

impl LinkRoundStats {
    /// Packet error rate over the contributing rounds.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.packets_bad as f64 / self.packets as f64
        }
    }
}

impl Merge for LinkRoundStats {
    fn merge(&mut self, other: &Self) {
        self.ber.merge(&other.ber);
        self.packets += other.packets;
        self.packets_bad += other.packets_bad;
    }
}

/// The engine's merge accumulator: one [`LinkRoundStats`] per link.
///
/// `Merge for Vec<T>` in the engine is *concatenation* (stream semantics),
/// which is wrong here — network rounds must merge **element-wise** per
/// link. The empty-default case (a fresh chunk accumulator) adopts the
/// other side wholesale.
#[derive(Debug, Clone, Default)]
pub struct NetAccumulator {
    /// Per-link statistics, indexed by link id.
    pub links: Vec<LinkRoundStats>,
}

impl NetAccumulator {
    /// Ensures `links` holds exactly `n` entries (idempotent).
    fn ensure_len(&mut self, n: usize) {
        if self.links.len() < n {
            self.links.resize(n, LinkRoundStats::default());
        }
    }
}

impl Merge for NetAccumulator {
    fn merge(&mut self, other: &Self) {
        if self.links.is_empty() {
            self.links.extend_from_slice(&other.links);
            return;
        }
        assert_eq!(
            self.links.len(),
            other.links.len(),
            "network accumulators must cover the same links"
        );
        for (a, b) in self.links.iter_mut().zip(&other.links) {
            a.merge(b);
        }
    }
}

/// Per-thread measurement state: one [`LinkWorker`] per link plus the
/// reusable mixing buffers. Constructed once per engine worker; everything
/// warm is allocation-free.
pub struct NetWorker {
    workers: Vec<LinkWorker>,
    clean: Vec<CleanSynthesis>,
    mixed: Vec<Complex>,
    scratch: DspScratch,
}

impl NetWorker {
    /// Builds the per-link workers from the frozen plan.
    pub fn new(plan: &NetPlan) -> Self {
        NetWorker {
            workers: plan
                .links
                .iter()
                .map(|l| LinkWorker::new(&l.scenario))
                .collect(),
            clean: Vec::with_capacity(plan.len()),
            mixed: Vec::new(),
            scratch: DspScratch::new(),
        }
    }

    /// Runs one network round (= one engine trial) and accumulates every
    /// link's outcome into `acc`.
    ///
    /// Phase 1 (`net_schedule`): each link synthesizes its clean at-receiver
    /// record for this round on its own decorrelated per-round RNG.
    /// Phase 2, per victim: mix own + coupled foreign records + calibrated
    /// AWGN (`net_mix`), then decode and count (`net_rx`).
    pub fn round(&mut self, plan: &NetPlan, round: u64, acc: &mut NetAccumulator) {
        let n = plan.len();
        acc.ensure_len(n);

        // --- Phase 1: clean synthesis for every transmitter. ---
        {
            let _t = uwb_obs::span!("net_schedule");
            self.clean.clear();
            for (l, (worker, link)) in self.workers.iter_mut().zip(&plan.links).enumerate() {
                let mut rng = Rand::for_trial(plan.link_seed(l), round);
                let clean = worker.synthesize_clean_streamed(
                    &link.scenario,
                    plan.payload_len,
                    plan.block_len,
                    &mut rng,
                );
                self.clean.push(clean);
            }
        }

        // --- Phase 2: per-victim mixing + reception. ---
        for v in 0..n {
            {
                let _t = uwb_obs::span!("net_mix");
                self.mixed.clear();
                self.mixed
                    .extend_from_slice(self.workers[v].clean_record());
                // Fixed ascending-transmitter order: the summation order is
                // part of the bit-exactness contract.
                for &(u, gain) in &plan.coupling[v] {
                    accumulate_scaled(&mut self.mixed, self.workers[u].clean_record(), gain);
                }
                // Receiver noise last, from the RNG state the single-link
                // path would hold — an uncoupled link is bit-identical to
                // an isolated streamed run.
                let mut awgn =
                    StreamingAwgn::new(self.clean[v].n0, self.clean[v].awgn_rng.clone());
                uwb_dsp::stream::BlockProcessor::process_block(
                    &mut awgn,
                    &mut self.mixed,
                    &mut self.scratch,
                );
            }
            let _t = uwb_obs::span!("net_rx");
            let stats = &mut acc.links[v];
            stats.packets += 1;
            let ok = self.workers[v].count_errors_in_record(
                &plan.links[v].scenario.config,
                &self.mixed,
                self.clean[v].slot0_start,
                &mut stats.ber,
            );
            if !ok {
                stats.packets_bad += 1;
            }
        }
    }
}

/// Plans and measures a complete network scenario: serial planning phase
/// ([`plan_network`]), then `scenario.rounds` measurement rounds on the
/// deterministic parallel engine, then report assembly.
pub fn run_network(scenario: &NetScenario) -> NetReport {
    run_plan(plan_network(scenario))
}

/// Measurement phase over an externally supplied (possibly hand-edited)
/// plan. Worker count follows `UWB_THREADS` / available parallelism; the
/// per-link counters are bit-identical either way.
pub fn run_plan(plan: NetPlan) -> NetReport {
    run_plan_engine(plan, None)
}

/// [`run_plan`] with an explicit worker-thread override — the hook the
/// determinism tests use to compare thread counts within one process
/// without racing on the `UWB_THREADS` environment variable.
pub fn run_plan_threads(plan: NetPlan, threads: usize) -> NetReport {
    run_plan_engine(plan, Some(threads))
}

fn run_plan_engine(plan: NetPlan, threads: Option<usize>) -> NetReport {
    let mut engine = MonteCarlo::new(plan.seed, plan.rounds);
    if let Some(t) = threads {
        engine = engine.threads(t);
    }
    let outcome = engine.run(
        || NetWorker::new(&plan),
        |w: &mut NetWorker, round, _rng, acc: &mut NetAccumulator| w.round(&plan, round, acc),
        |_| false,
    );
    let mut acc = outcome.value;
    acc.ensure_len(plan.len());
    let links: Vec<LinkReport> = plan
        .links
        .iter()
        .zip(&acc.links)
        .map(|(l, s)| LinkReport::new(l, s))
        .collect();
    NetReport::new(links, outcome.stats, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_round_stats_merge_is_elementwise() {
        let mut a = NetAccumulator::default();
        a.ensure_len(2);
        a.links[0].packets = 3;
        a.links[0].packets_bad = 1;
        a.links[1].packets = 3;
        let mut b = NetAccumulator::default();
        b.ensure_len(2);
        b.links[0].packets = 2;
        b.links[1].packets = 2;
        b.links[1].packets_bad = 2;
        a.merge(&b);
        assert_eq!(a.links.len(), 2, "element-wise, not concatenation");
        assert_eq!(a.links[0].packets, 5);
        assert_eq!(a.links[0].packets_bad, 1);
        assert_eq!(a.links[1].packets, 5);
        assert_eq!(a.links[1].packets_bad, 2);
    }

    #[test]
    fn empty_accumulator_adopts_other_side() {
        let mut a = NetAccumulator::default();
        let mut b = NetAccumulator::default();
        b.ensure_len(3);
        b.links[2].packets = 7;
        a.merge(&b);
        assert_eq!(a.links.len(), 3);
        assert_eq!(a.links[2].packets, 7);
    }

    #[test]
    fn per_handles_zero_packets() {
        let s = LinkRoundStats::default();
        assert_eq!(s.per(), 0.0);
        let s = LinkRoundStats {
            packets: 4,
            packets_bad: 1,
            ..Default::default()
        };
        assert_eq!(s.per(), 0.25);
    }
}
