//! Network measurement reports: per-link BER/PER/throughput and the
//! aggregate network throughput.

use crate::controller::{NetLinkPlan, NetPlan};
use crate::runner::LinkRoundStats;
use uwb_phy::bandplan::Channel;
use uwb_platform::metrics::ErrorCounter;
use uwb_platform::report::Table;
use uwb_sim::montecarlo::RunStats;

/// One link's measured outcome.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// The link's assigned band-plan channel.
    pub channel: Channel,
    /// Bit-level error counter over all measurement rounds.
    pub counter: ErrorCounter,
    /// Packets attempted (one per round).
    pub packets: u64,
    /// Packets with at least one bit error or a decode failure.
    pub packets_bad: u64,
    /// The link's configured physical bit rate (bit/s).
    pub bit_rate: f64,
    /// Goodput proxy: `bit_rate × (1 − PER)` (bit/s).
    pub throughput_bps: f64,
    /// Probe-measured interference power relative to the link's own signal
    /// (dB; `-inf` when nothing couples).
    pub interference_rel_db: f64,
}

impl LinkReport {
    /// Assembles a link report from its plan entry and round statistics.
    pub fn new(plan: &NetLinkPlan, stats: &LinkRoundStats) -> LinkReport {
        let bit_rate = plan.scenario.config.bit_rate();
        // An unmeasured link (zero packets, PER = NaN) delivered nothing:
        // its goodput is 0, not NaN — a NaN here would poison the aggregate
        // network throughput sum.
        let throughput_bps = if stats.packets == 0 {
            0.0
        } else {
            bit_rate * (1.0 - stats.per())
        };
        LinkReport {
            channel: plan.channel,
            counter: stats.ber,
            packets: stats.packets,
            packets_bad: stats.packets_bad,
            bit_rate,
            throughput_bps,
            interference_rel_db: plan.interference_rel_db,
        }
    }

    /// Measured bit error rate (`NaN` when no bits were counted).
    pub fn ber(&self) -> f64 {
        self.counter.rate()
    }

    /// Measured packet error rate.
    ///
    /// `NaN` when no packets were attempted — the same no-data contract as
    /// [`ErrorCounter::rate`] and [`LinkRoundStats::per`]: an unmeasured
    /// link must stay distinguishable from a link measured error-free.
    pub fn per(&self) -> f64 {
        if self.packets == 0 {
            f64::NAN
        } else {
            self.packets_bad as f64 / self.packets as f64
        }
    }
}

/// The complete network measurement report.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Per-link reports, indexed by link id.
    pub links: Vec<LinkReport>,
    /// Sum of all links' goodput (bit/s).
    pub aggregate_throughput_bps: f64,
    /// Engine execution statistics (trials = rounds; includes the
    /// deterministic telemetry snapshot when `obs` is enabled).
    pub stats: RunStats,
    /// The frozen plan the measurement replayed (channels, coupling,
    /// adaptation decisions).
    pub plan: NetPlan,
}

impl NetReport {
    /// Assembles the report and computes the aggregate throughput.
    pub fn new(links: Vec<LinkReport>, stats: RunStats, plan: NetPlan) -> NetReport {
        let aggregate_throughput_bps = links.iter().map(|l| l.throughput_bps).sum();
        NetReport {
            links,
            aggregate_throughput_bps,
            stats,
            plan,
        }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when the report covers no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Renders the per-link table (`link / ch / BER / PER / I/S dB /
    /// throughput`) used by the experiment binaries.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "link", "ch", "bits", "errors", "BER", "PER", "I/S dB", "Mbit/s",
        ]);
        for (l, r) in self.links.iter().enumerate() {
            let isr = if r.interference_rel_db.is_finite() {
                format!("{:.1}", r.interference_rel_db)
            } else {
                "-inf".to_string()
            };
            let per = r.per();
            t.row(vec![
                l.to_string(),
                r.channel.index().to_string(),
                r.counter.total.to_string(),
                r.counter.errors.to_string(),
                format!("{:.2e}", r.ber()),
                if per.is_nan() {
                    "n/a".to_string()
                } else {
                    format!("{per:.3}")
                },
                isr,
                format!("{:.1}", r.throughput_bps / 1e6),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_per() {
        let plan = crate::controller::plan_network(&crate::scenario::NetScenario::ring(
            1, 8.0, 9,
        ));
        let stats = LinkRoundStats {
            packets: 4,
            packets_bad: 1,
            ..Default::default()
        };
        let r = LinkReport::new(&plan.links[0], &stats);
        assert!((r.throughput_bps - r.bit_rate * 0.75).abs() < 1e-6);
        assert_eq!(r.per(), 0.25);
    }

    #[test]
    fn unmeasured_link_reports_nan_per_and_zero_goodput() {
        let plan = crate::controller::plan_network(&crate::scenario::NetScenario::ring(
            1, 8.0, 9,
        ));
        let r = LinkReport::new(&plan.links[0], &LinkRoundStats::default());
        assert!(r.per().is_nan(), "no packets must read as no-data");
        assert_eq!(r.throughput_bps, 0.0, "no data delivered -> zero goodput");
        // The aggregate (a plain sum over links) stays finite even with
        // unmeasured links in the mix.
        let aggregate: f64 = [&r].iter().map(|l| l.throughput_bps).sum();
        assert!(aggregate.is_finite());
    }

    #[test]
    fn zero_round_run_renders_na_per() {
        // End-to-end no-data path: a zero-round measurement must report
        // NaN PER, zero goodput, and render "n/a" in the table.
        let mut sc = crate::scenario::NetScenario::ring(1, 8.0, 9);
        sc.rounds = 0;
        sc.probe_spectral = false;
        let report = crate::runner::run_network(&sc);
        assert!(report.links[0].per().is_nan());
        assert_eq!(report.aggregate_throughput_bps, 0.0);
        assert!(report.table().to_string().contains("n/a"));
    }
}
