//! The shared-waveform arena and its plan-time liveness schedule.
//!
//! Both the planning probe sweep and every measurement round walk victims
//! in ascending order, and each needs transmitter `u`'s clean record from
//! the first victim that reads it (which may be `u` itself) until the last.
//! [`RecordSchedule`] derives that live range from the coupling rows once,
//! and [`RecordArena`] provides exactly `max_live` interchangeable record
//! buffers: a record is synthesized **once** per (transmitter, round) into
//! an acquired slot, shared read-only by every coupled receiver, and the
//! slot is recycled the moment its last reader has been processed. Memory
//! therefore scales with the interference graph's *overlap width*, not with
//! the network size — the property that lets a 10 000-node round run in a
//! few dozen record buffers.
//!
//! Everything here is allocation-free once warm: the slot buffers ratchet
//! to their high-water capacity during the first round (the acquisition
//! sequence is identical every round, so each slot sees the same demand),
//! and the free list / residency map are sized at construction.

use crate::coupling::CouplingRow;
use uwb_dsp::Complex;

/// Sentinel residency: the link's record is not in the arena.
const NO_SLOT: u32 = u32::MAX;

/// Plan-time liveness of per-transmitter records over the ascending-victim
/// sweep: when each record is first needed, when it dies, and the maximum
/// number simultaneously alive (= the arena size).
#[derive(Debug, Clone)]
pub struct RecordSchedule {
    /// Per victim `v`: the transmitters whose records are dead once `v`
    /// has been processed (each transmitter appears exactly once).
    expire_at: Vec<Vec<u32>>,
    /// Per transmitter: the last victim index that reads its record.
    last_use: Vec<u32>,
    /// Maximum simultaneously-live records over the sweep.
    max_live: usize,
}

impl RecordSchedule {
    /// Derives the schedule from the coupling rows of an `n`-link network.
    /// Transmitter `u`'s record is read by victim `u` (its own signal) and
    /// by every victim whose row contains `u`.
    pub fn build(n: usize, rows: &[CouplingRow]) -> RecordSchedule {
        assert_eq!(rows.len(), n, "one coupling row per link");
        let mut first: Vec<u32> = (0..n as u32).collect();
        let mut last: Vec<u32> = (0..n as u32).collect();
        for (v, row) in rows.iter().enumerate() {
            for &(u, _) in row {
                first[u] = first[u].min(v as u32);
                last[u] = last[u].max(v as u32);
            }
        }
        let mut expire_at: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, &l) in last.iter().enumerate() {
            expire_at[l as usize].push(u as u32);
        }
        let mut acquires = vec![0u32; n];
        for &f in &first {
            acquires[f as usize] += 1;
        }
        let mut live = 0usize;
        let mut max_live = 0usize;
        for v in 0..n {
            live += acquires[v] as usize;
            max_live = max_live.max(live);
            live -= expire_at[v].len();
        }
        debug_assert_eq!(live, 0, "every record must die by the end of the sweep");
        RecordSchedule {
            expire_at,
            last_use: last,
            max_live,
        }
    }

    /// The arena size this schedule needs.
    pub fn max_live(&self) -> usize {
        self.max_live
    }

    /// The last victim index that reads transmitter `u`'s record. A link
    /// whose record has no reader beyond itself (`last_use(u) == u` with an
    /// empty row) is *isolated* — the event-driven round applies its noise
    /// in place instead of copying into a mix buffer.
    pub fn last_use(&self, u: usize) -> usize {
        self.last_use[u] as usize
    }

    /// The transmitters whose records die once victim `v` is processed.
    pub fn expiring_after(&self, v: usize) -> &[u32] {
        &self.expire_at[v]
    }
}

/// `max_live` interchangeable waveform buffers plus the link → slot
/// residency map. Slot identity is meaningless — buffers only carry a
/// round's record between its synthesis and its last reader.
#[derive(Debug)]
pub struct RecordArena {
    slots: Vec<Vec<Complex>>,
    free: Vec<u32>,
    slot_of: Vec<u32>,
}

impl RecordArena {
    /// An arena of `max_live` slots covering `n_links` links.
    pub fn new(n_links: usize, max_live: usize) -> RecordArena {
        RecordArena {
            slots: (0..max_live).map(|_| Vec::new()).collect(),
            free: (0..max_live as u32).rev().collect(),
            slot_of: vec![NO_SLOT; n_links],
        }
    }

    /// `true` when link `u`'s record is currently resident.
    pub fn is_resident(&self, u: usize) -> bool {
        self.slot_of[u] != NO_SLOT
    }

    /// Acquires a slot for link `u`'s record and returns its buffer for the
    /// synthesis call to fill.
    ///
    /// # Panics
    ///
    /// Panics if `u` is already resident or the schedule's `max_live` bound
    /// is violated (both are plan-construction bugs, not runtime states).
    pub fn acquire(&mut self, u: usize) -> &mut Vec<Complex> {
        assert_eq!(self.slot_of[u], NO_SLOT, "link {u} already resident");
        let slot = self
            .free
            .pop()
            .expect("record arena exhausted: schedule bound violated");
        self.slot_of[u] = slot;
        &mut self.slots[slot as usize]
    }

    /// Read-only view of link `u`'s resident record.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not resident.
    pub fn record(&self, u: usize) -> &[Complex] {
        let slot = self.slot_of[u];
        assert_ne!(slot, NO_SLOT, "link {u} not resident");
        &self.slots[slot as usize]
    }

    /// Mutable view of link `u`'s resident record — the isolated-victim
    /// fast path applies receiver noise directly in the slot instead of
    /// copying into a mix buffer (valid only when no later victim reads
    /// the record).
    pub fn record_mut(&mut self, u: usize) -> &mut [Complex] {
        let slot = self.slot_of[u];
        assert_ne!(slot, NO_SLOT, "link {u} not resident");
        &mut self.slots[slot as usize]
    }

    /// Recycles every record whose last reader was victim `v`.
    pub fn release_expired(&mut self, schedule: &RecordSchedule, v: usize) {
        for &u in schedule.expiring_after(v) {
            let slot = self.slot_of[u as usize];
            debug_assert_ne!(slot, NO_SLOT, "expiring a non-resident record");
            self.slot_of[u as usize] = NO_SLOT;
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_bounds_live_records() {
        // 4 links; victim 0 reads tx 2, victim 3 reads tx 1.
        let rows: Vec<CouplingRow> =
            vec![vec![(2, 0.5)], vec![], vec![], vec![(1, 0.25)]];
        let s = RecordSchedule::build(4, &rows);
        // Sweep: v0 acquires {0, 2}, frees 0; v1 acquires 1 (live {1,2}),
        // v2 frees 2 after its own decode; v3 acquires 3, frees 1 and 3.
        assert_eq!(s.max_live(), 2);
        assert_eq!(s.last_use(0), 0);
        assert_eq!(s.last_use(1), 3);
        assert_eq!(s.last_use(2), 2);
        assert_eq!(s.expiring_after(0), &[0]);
        assert_eq!(s.expiring_after(2), &[2]);
        assert_eq!(s.expiring_after(3), &[1, 3]);
    }

    #[test]
    fn dense_rows_keep_everything_live() {
        let rows: Vec<CouplingRow> = (0..3)
            .map(|v| (0..3).filter(|&u| u != v).map(|u| (u, 1.0)).collect())
            .collect();
        let s = RecordSchedule::build(3, &rows);
        assert_eq!(s.max_live(), 3);
        assert!(s.expiring_after(0).is_empty());
        assert!(s.expiring_after(1).is_empty());
        assert_eq!(s.expiring_after(2), &[0, 1, 2]);
    }

    #[test]
    fn arena_recycles_slots() {
        let rows: Vec<CouplingRow> = vec![vec![], vec![], vec![]];
        let s = RecordSchedule::build(3, &rows);
        assert_eq!(s.max_live(), 1);
        let mut arena = RecordArena::new(3, s.max_live());
        for v in 0..3 {
            assert!(!arena.is_resident(v));
            let buf = arena.acquire(v);
            buf.clear();
            buf.push(Complex::ONE);
            assert!(arena.is_resident(v));
            assert_eq!(arena.record(v).len(), 1);
            arena.record_mut(v)[0] = Complex::ZERO;
            arena.release_expired(&s, v);
            assert!(!arena.is_resident(v));
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn arena_panics_past_its_bound() {
        let mut arena = RecordArena::new(2, 1);
        arena.acquire(0);
        arena.acquire(1);
    }
}
