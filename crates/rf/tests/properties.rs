//! Property-based tests for the RF behavioral models.

use proptest::prelude::*;
use uwb_dsp::Complex;
use uwb_rf::{Agc, IqImpairments, Lna, LocalOscillator, TunableNotch};
use uwb_sim::time::{Hertz, SampleRate};
use uwb_sim::Rand;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In the small-signal regime the LNA is linear: doubling the input
    /// doubles the output (noise disabled).
    #[test]
    fn lna_small_signal_linear(gain_db in 0.0f64..30.0, amp in 1e-6f64..1e-3) {
        let lna = Lna { gain_db, nf_db: 0.0, iip3_dbm: 20.0 };
        let mut rng = Rand::new(0);
        let x = vec![amp, -amp, amp / 2.0];
        let y = lna.amplify_real(&x, 0.0, &mut rng);
        let g = uwb_dsp::math::db_to_amp(gain_db);
        for (xi, yi) in x.iter().zip(&y) {
            prop_assert!((yi - g * xi).abs() < g * amp * 1e-3);
        }
    }

    /// Compression only ever reduces gain (output magnitude <= linear gain).
    #[test]
    fn lna_never_expands(amp in 1e-4f64..0.5, iip3 in -20.0f64..10.0) {
        let lna = Lna { gain_db: 10.0, nf_db: 0.0, iip3_dbm: iip3 };
        let mut rng = Rand::new(1);
        let y = lna.amplify_real(&[amp], 0.0, &mut rng)[0];
        let g = uwb_dsp::math::db_to_amp(10.0);
        prop_assert!(y.abs() <= g * amp + 1e-12);
    }

    /// The AGC always lands the RMS on target (within clamp limits).
    #[test]
    fn agc_hits_target(power in 1e-4f64..1e4, target in 0.05f64..2.0) {
        let mut agc = Agc::new(target, 1e-6, 1e6);
        let mut rng = Rand::new(2);
        let sig = uwb_sim::awgn::complex_noise(5_000, power, &mut rng);
        let out = agc.process(&sig);
        let rms = uwb_dsp::complex::mean_power(&out).sqrt();
        prop_assert!((rms - target).abs() / target < 0.1, "{rms} vs {target}");
    }

    /// A bypassed notch is the identity; an engaged notch never amplifies
    /// total power.
    #[test]
    fn notch_passive(f_mhz in -400.0f64..400.0, seed in any::<u64>()) {
        let fs = SampleRate::from_gsps(1.0);
        let mut rng = Rand::new(seed);
        let sig = uwb_sim::awgn::complex_noise(4_096, 1.0, &mut rng);
        let mut notch = TunableNotch::new(fs, 30.0);
        prop_assert_eq!(notch.process(&sig), sig.clone());
        notch.tune(Hertz::new(f_mhz * 1e6));
        let out = notch.process(&sig);
        let p_in = uwb_dsp::complex::mean_power(&sig);
        let p_out = uwb_dsp::complex::mean_power(&out);
        prop_assert!(p_out <= p_in * 1.05, "notch amplified: {p_out} vs {p_in}");
    }

    /// LO ppm arithmetic: actual = nominal * (1 + ppm * 1e-6).
    #[test]
    fn lo_cfo_arithmetic(ghz in 1.0f64..11.0, ppm in -100.0f64..100.0) {
        let lo = LocalOscillator::with_impairments(Hertz::from_ghz(ghz), ppm, 0.0);
        let expect = ghz * 1e9 * ppm * 1e-6;
        prop_assert!((lo.cfo_hz() - expect).abs() < 1e-3 * expect.abs().max(1.0));
    }

    /// LO phasors always have unit magnitude, with or without phase noise.
    #[test]
    fn lo_unit_magnitude(linewidth in 0.0f64..1e6, seed in any::<u64>()) {
        let mut lo = LocalOscillator::with_impairments(Hertz::from_mhz(100.0), 0.0, linewidth);
        let mut rng = Rand::new(seed);
        for z in lo.generate(256, 1e9, &mut rng) {
            prop_assert!((z.norm() - 1.0).abs() < 1e-12);
        }
    }

    /// Image-rejection ratio decreases as impairments grow.
    #[test]
    fn irr_monotone(gain_db in 0.01f64..2.0, phase_deg in 0.1f64..10.0) {
        let small = IqImpairments {
            gain_imbalance_db: gain_db / 2.0,
            phase_error_deg: phase_deg / 2.0,
            dc_offset_i: 0.0,
            dc_offset_q: 0.0,
        };
        let large = IqImpairments {
            gain_imbalance_db: gain_db,
            phase_error_deg: phase_deg,
            dc_offset_i: 0.0,
            dc_offset_q: 0.0,
        };
        prop_assert!(small.image_rejection_db() > large.image_rejection_db());
    }

    /// remove_dc leaves a zero-mean signal.
    #[test]
    fn dc_removal(re in -2.0f64..2.0, im in -2.0f64..2.0, seed in any::<u64>()) {
        let mut rng = Rand::new(seed);
        let sig: Vec<Complex> = uwb_sim::awgn::complex_noise(1_000, 0.5, &mut rng)
            .into_iter()
            .map(|z| z + Complex::new(re, im))
            .collect();
        let clean = uwb_rf::downconvert::remove_dc(&sig);
        let mean = clean.iter().copied().sum::<Complex>() / clean.len() as f64;
        prop_assert!(mean.norm() < 1e-9);
    }
}
