//! Thermal noise and noise-figure bookkeeping.

use uwb_sim::rng::Rand;
use uwb_sim::time::Hertz;
use uwb_dsp::Complex;

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380649e-23;
/// Standard noise temperature (K).
pub const T0_KELVIN: f64 = 290.0;

/// Thermal noise power in watts for a bandwidth at 290 K: `k T0 B`.
pub fn thermal_noise_watts(bandwidth: Hertz) -> f64 {
    BOLTZMANN * T0_KELVIN * bandwidth.as_hz()
}

/// Thermal noise power in dBm for a bandwidth at 290 K.
pub fn thermal_noise_dbm(bandwidth: Hertz) -> f64 {
    10.0 * (thermal_noise_watts(bandwidth) * 1e3).log10()
}

/// Converts a noise figure (dB) to the equivalent input-referred noise
/// temperature in kelvin: `Te = T0 (F − 1)`.
pub fn noise_figure_to_temperature(nf_db: f64) -> f64 {
    T0_KELVIN * (uwb_dsp::math::db_to_pow(nf_db) - 1.0)
}

/// Cascaded noise figure (Friis). Stages are `(gain_db, nf_db)` in signal
/// order; returns the composite noise figure in dB.
///
/// # Panics
///
/// Panics if `stages` is empty.
pub fn friis_cascade_nf_db(stages: &[(f64, f64)]) -> f64 {
    assert!(!stages.is_empty(), "need at least one stage");
    let mut f_total = uwb_dsp::math::db_to_pow(stages[0].1);
    let mut gain_product = uwb_dsp::math::db_to_pow(stages[0].0);
    for &(g_db, nf_db) in &stages[1..] {
        let f = uwb_dsp::math::db_to_pow(nf_db);
        f_total += (f - 1.0) / gain_product;
        gain_product *= uwb_dsp::math::db_to_pow(g_db);
    }
    uwb_dsp::math::pow_to_db(f_total)
}

/// Adds input-referred front-end noise to a complex baseband signal.
///
/// `signal_power_ref` is the nominal signal power the SNR is referenced to;
/// `snr_at_antenna_db` is the SNR the antenna delivers; the front end then
/// degrades it by `nf_db`.
pub fn apply_front_end_noise(
    signal: &[Complex],
    signal_power_ref: f64,
    snr_at_antenna_db: f64,
    nf_db: f64,
    rng: &mut Rand,
) -> Vec<Complex> {
    let effective_snr = snr_at_antenna_db - nf_db;
    let noise_power = signal_power_ref / uwb_dsp::math::db_to_pow(effective_snr);
    uwb_sim::awgn::add_awgn_complex(signal, noise_power, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_reference_values() {
        // kT0 = -174 dBm/Hz.
        let per_hz = thermal_noise_dbm(Hertz::new(1.0));
        assert!((per_hz + 174.0).abs() < 0.1, "{per_hz}");
        let mhz500 = thermal_noise_dbm(Hertz::from_mhz(500.0));
        assert!((mhz500 + 87.0).abs() < 0.1, "{mhz500}");
    }

    #[test]
    fn nf_to_temperature() {
        assert!(noise_figure_to_temperature(0.0).abs() < 1e-9);
        // 3 dB NF ~ 290 K.
        let t = noise_figure_to_temperature(3.0103);
        assert!((t - 290.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn friis_single_stage() {
        assert!((friis_cascade_nf_db(&[(20.0, 4.0)]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn friis_first_stage_dominates() {
        // High-gain low-NF LNA hides a noisy mixer.
        let nf = friis_cascade_nf_db(&[(20.0, 3.0), (0.0, 15.0)]);
        assert!(nf < 4.5, "{nf}");
        // Without LNA gain the mixer dominates.
        let nf_bad = friis_cascade_nf_db(&[(0.0, 3.0), (0.0, 15.0)]);
        assert!(nf_bad > 15.0, "{nf_bad}");
    }

    #[test]
    fn front_end_noise_degrades_snr_by_nf() {
        let mut rng = Rand::new(1);
        let sig = vec![Complex::ONE; 100_000];
        let out = apply_front_end_noise(&sig, 1.0, 20.0, 6.0, &mut rng);
        let resid: f64 = out
            .iter()
            .map(|z| (*z - Complex::ONE).norm_sqr())
            .sum::<f64>()
            / out.len() as f64;
        // Effective SNR 14 dB -> noise power ~0.0398.
        let expect = uwb_dsp::math::db_to_pow(-14.0);
        assert!((resid - expect).abs() / expect < 0.05, "{resid} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_cascade_panics() {
        friis_cascade_nf_db(&[]);
    }
}
