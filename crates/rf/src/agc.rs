//! Automatic gain control.
//!
//! The ADCs have a fixed full-scale range; the AGC scales the analog signal
//! so the converter's dynamic range is used efficiently. Mis-set gain is one
//! of the mechanisms by which a strong narrowband interferer destroys a
//! low-resolution ADC's signal (paper §1 / their ref \[1\]): the AGC backs off
//! to avoid clipping the interferer and the wanted signal drops below one
//! LSB.

use uwb_dsp::{simd, Complex};

/// Feed-forward block AGC: measures power over a block and applies one gain.
#[derive(Debug, Clone, PartialEq)]
pub struct Agc {
    target_rms: f64,
    max_gain: f64,
    min_gain: f64,
    gain: f64,
}

impl Agc {
    /// Creates an AGC targeting the given RMS level with gain limits.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_gain <= max_gain` and `target_rms > 0`.
    pub fn new(target_rms: f64, min_gain: f64, max_gain: f64) -> Self {
        assert!(target_rms > 0.0, "target RMS must be positive");
        assert!(
            min_gain > 0.0 && min_gain <= max_gain,
            "need 0 < min_gain <= max_gain"
        );
        Agc {
            target_rms,
            max_gain,
            min_gain,
            gain: 1.0,
        }
    }

    /// An AGC for an ADC with full-scale ±1: targets RMS at −9 dBFS
    /// (crest-factor headroom for pulsed signals), 60 dB gain range.
    pub fn for_unit_adc() -> Self {
        Agc::new(0.355, 1e-3, 1e3)
    }

    /// The most recent gain applied.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The target RMS level.
    pub fn target_rms(&self) -> f64 {
        self.target_rms
    }

    /// Lower gain limit.
    pub fn min_gain(&self) -> f64 {
        self.min_gain
    }

    /// Upper gain limit.
    pub fn max_gain(&self) -> f64 {
        self.max_gain
    }

    /// Measures the block and applies the computed gain. A silent block
    /// keeps the previous gain.
    ///
    /// Thin allocating wrapper over [`Agc::process_in_place`] (kept for
    /// callers that want a fresh buffer; bit-identical — see the parity
    /// test).
    pub fn process(&mut self, signal: &[Complex]) -> Vec<Complex> {
        let mut out = signal.to_vec();
        self.process_in_place(&mut out);
        out
    }

    /// [`Agc::process`] mutating the signal in place (allocation-free) —
    /// the form the streaming chain and the per-trial workers use.
    ///
    /// Runs as two flat sweeps (a lane-split `|z|²` reduction, then a
    /// branch-free scale pass) that autovectorize; the reduction's fixed
    /// lane order is deterministic on every target (see [`uwb_dsp::simd`]).
    pub fn process_in_place(&mut self, signal: &mut [Complex]) {
        let p = simd::mean_power(signal);
        if p > 0.0 {
            self.gain = (self.target_rms / p.sqrt()).clamp(self.min_gain, self.max_gain);
        }
        simd::scale_in_place(signal, self.gain);
    }

    /// Variant that sets gain from peak amplitude rather than RMS — this is
    /// what a clipping-avoidance AGC does, and what lets a strong interferer
    /// crush the wanted signal.
    ///
    /// Thin allocating wrapper over
    /// [`Agc::process_peak_referenced_in_place`].
    pub fn process_peak_referenced(&mut self, signal: &[Complex], full_scale: f64) -> Vec<Complex> {
        let mut out = signal.to_vec();
        self.process_peak_referenced_in_place(&mut out, full_scale);
        out
    }

    /// [`Agc::process_peak_referenced`] mutating the signal in place
    /// (allocation-free).
    ///
    /// # Panics
    ///
    /// Panics unless `full_scale` is positive and finite — the same
    /// validation [`Agc::new`] enforces for its limits. (Without the guard
    /// a zero, negative, or NaN full scale would put a NaN gain through
    /// `clamp`, which propagates NaN, and silently corrupt the block.)
    pub fn process_peak_referenced_in_place(&mut self, signal: &mut [Complex], full_scale: f64) {
        assert!(
            full_scale > 0.0 && full_scale.is_finite(),
            "full scale must be positive and finite, got {full_scale}"
        );
        // max(|z|²) then one sqrt: sqrt is monotone and correctly rounded,
        // so this is bit-identical to folding max over |z| — and the
        // sqrt-free reduction autovectorizes.
        let peak_sq = signal.iter().fold(0.0f64, |m, z| m.max(z.norm_sqr()));
        if peak_sq > 0.0 {
            self.gain = (full_scale / peak_sq.sqrt()).clamp(self.min_gain, self.max_gain);
        }
        simd::scale_in_place(signal, self.gain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::rng::Rand;

    #[test]
    fn rms_converges_to_target() {
        let mut agc = Agc::new(0.5, 1e-3, 1e3);
        let mut rng = Rand::new(1);
        let sig = uwb_sim::awgn::complex_noise(10_000, 25.0, &mut rng); // RMS 5
        let out = agc.process(&sig);
        let rms_out = uwb_dsp::complex::mean_power(&out).sqrt();
        assert!((rms_out - 0.5).abs() < 0.02, "{rms_out}");
    }

    #[test]
    fn gain_limits_respected() {
        let mut agc = Agc::new(1.0, 0.5, 2.0);
        // Tiny signal wants gain >> 2: clamped.
        let tiny = vec![Complex::new(1e-6, 0.0); 100];
        agc.process(&tiny);
        assert_eq!(agc.gain(), 2.0);
        // Huge signal wants gain << 0.5: clamped.
        let huge = vec![Complex::new(1e6, 0.0); 100];
        agc.process(&huge);
        assert_eq!(agc.gain(), 0.5);
    }

    #[test]
    fn silence_keeps_gain() {
        let mut agc = Agc::for_unit_adc();
        let sig = vec![Complex::new(0.1, 0.0); 100];
        agc.process(&sig);
        let g = agc.gain();
        agc.process(&vec![Complex::ZERO; 100]);
        assert_eq!(agc.gain(), g);
    }

    #[test]
    fn peak_referenced_backs_off_for_interferer() {
        // Wanted pulse amplitude 0.1, interferer amplitude 10: peak AGC sets
        // gain from the interferer, crushing the pulse.
        let mut agc = Agc::new(0.355, 1e-6, 1e6);
        let mut sig = vec![Complex::new(0.1, 0.0); 100];
        sig[50] = Complex::new(10.0, 0.0);
        let out = agc.process_peak_referenced(&sig, 1.0);
        // Pulse is now at 0.1 * (1/10) = 0.01 of full scale.
        assert!((out[0].norm() - 0.01).abs() < 1e-9, "{}", out[0].norm());
    }

    #[test]
    fn in_place_matches_allocating_bitwise() {
        let mut rng = Rand::new(7);
        let sig = uwb_sim::awgn::complex_noise(512, 3.7, &mut rng);

        let mut a = Agc::for_unit_adc();
        let mut b = a.clone();
        let want = a.process(&sig);
        let mut buf = sig.clone();
        b.process_in_place(&mut buf);
        assert_eq!(buf, want);
        assert_eq!(a.gain(), b.gain());

        let mut a = Agc::new(0.355, 1e-6, 1e6);
        let mut b = a.clone();
        let want = a.process_peak_referenced(&sig, 1.0);
        let mut buf = sig.clone();
        b.process_peak_referenced_in_place(&mut buf, 1.0);
        assert_eq!(buf, want);
        assert_eq!(a.gain(), b.gain());
    }

    #[test]
    #[should_panic(expected = "min_gain")]
    fn bad_limits_panic() {
        Agc::new(1.0, 2.0, 1.0);
    }

    #[test]
    fn peak_referenced_rejects_bad_full_scale() {
        // A zero/negative/non-finite full scale used to put a NaN gain
        // through clamp and silently corrupt the block.
        for fs in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let caught = std::panic::catch_unwind(|| {
                let mut agc = Agc::for_unit_adc();
                let mut sig = vec![Complex::ONE; 4];
                agc.process_peak_referenced_in_place(&mut sig, fs);
            });
            assert!(caught.is_err(), "full_scale {fs} must be rejected");
        }
    }
}
