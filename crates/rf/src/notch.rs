//! Tunable notch filter steered by the spectral-monitoring block.
//!
//! Paper §3: "The digital back end detects the presence of an interferer and
//! estimates its frequency that may be used in the front end notch filter."
//! This is that front-end notch, modeled at complex baseband.

use uwb_dsp::{Biquad, Complex};
use uwb_sim::time::{Hertz, SampleRate};

/// A retunable complex-baseband notch filter.
///
/// Baseband frequencies can be negative (below the carrier); the filter
/// realizes the notch by frequency-shifting the signal so the interferer
/// lands at a fixed positive design frequency, notching, and shifting back.
#[derive(Debug, Clone)]
pub struct TunableNotch {
    fs: SampleRate,
    q: f64,
    center: Option<Hertz>,
}

impl TunableNotch {
    /// Creates a disengaged notch for signals at `fs`.
    ///
    /// # Panics
    ///
    /// Panics if `q <= 0`.
    pub fn new(fs: SampleRate, q: f64) -> Self {
        assert!(q > 0.0, "notch Q must be positive");
        TunableNotch {
            fs,
            q,
            center: None,
        }
    }

    /// Tunes the notch to a (possibly negative) baseband frequency.
    ///
    /// # Panics
    ///
    /// Panics if `|freq|` is not below Nyquist.
    pub fn tune(&mut self, freq: Hertz) {
        assert!(
            freq.as_hz().abs() < self.fs.as_hz() / 2.0,
            "notch frequency must be below Nyquist"
        );
        self.center = Some(freq);
    }

    /// Disengages the notch (signal passes through untouched).
    pub fn bypass(&mut self) {
        self.center = None;
    }

    /// The tuned center frequency, if engaged.
    pub fn center(&self) -> Option<Hertz> {
        self.center
    }

    /// Quality factor.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The sample rate the notch was designed for.
    pub fn sample_rate(&self) -> SampleRate {
        self.fs
    }

    /// The −3 dB notch width in hertz (≈ `f_design/Q` mapped to the sample
    /// rate — narrow relative to a 500 MHz UWB channel by design).
    pub fn notch_width_hz(&self) -> f64 {
        // Design frequency is fixed at fs/8 (see `process`).
        (self.fs.as_hz() / 8.0) / self.q
    }

    /// Filters a complex baseband block. When disengaged, returns the input
    /// unchanged.
    pub fn process(&self, signal: &[Complex]) -> Vec<Complex> {
        let Some(center) = self.center else {
            return signal.to_vec();
        };
        // Move the interferer to the fixed design frequency fs/8, apply a
        // real-coefficient notch there, and move back. Using a fixed design
        // frequency keeps the biquad well-conditioned for any tuning, exactly
        // like an analog notch with a varactor-tuned center.
        let f_design = self.fs.as_hz() / 8.0;
        let shift = f_design - center.as_hz();
        let shifted = uwb_dsp::nco::frequency_shift(signal, shift, self.fs.as_hz());
        let mut notch = Biquad::notch(0.125, self.q);
        let notched = notch.process_complex(&shifted);
        uwb_dsp::nco::frequency_shift(&notched, -shift, self.fs.as_hz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::complex::mean_power;
    use uwb_sim::rng::Rand;
    use uwb_sim::Interferer;

    fn fs() -> SampleRate {
        SampleRate::from_gsps(1.0)
    }

    #[test]
    fn bypass_is_identity() {
        let notch = TunableNotch::new(fs(), 30.0);
        let sig: Vec<Complex> = (0..64).map(|i| Complex::new(i as f64, -1.0)).collect();
        assert_eq!(notch.process(&sig), sig);
    }

    #[test]
    fn kills_tone_at_positive_offset() {
        let mut rng = Rand::new(1);
        let intf = Interferer::cw(120e6, 1.0);
        let tone = intf.generate(16_384, fs().as_hz(), &mut rng);
        let mut notch = TunableNotch::new(fs(), 30.0);
        notch.tune(Hertz::from_mhz(120.0));
        let out = notch.process(&tone);
        let residual = mean_power(&out[8192..]);
        assert!(residual < 0.01, "tone survived: {residual}");
    }

    #[test]
    fn kills_tone_at_negative_offset() {
        let mut rng = Rand::new(2);
        let intf = Interferer::cw(-200e6, 4.0);
        let tone = intf.generate(16_384, fs().as_hz(), &mut rng);
        let mut notch = TunableNotch::new(fs(), 30.0);
        notch.tune(Hertz::from_mhz(-200.0));
        let out = notch.process(&tone);
        let residual = mean_power(&out[8192..]);
        assert!(residual < 0.04, "tone survived: {residual}");
    }

    #[test]
    fn passes_offset_frequencies() {
        let mut rng = Rand::new(3);
        // Signal at +50 MHz, notch at -150 MHz: signal untouched.
        let sig_tone = Interferer::cw(50e6, 1.0).generate(16_384, fs().as_hz(), &mut rng);
        let mut notch = TunableNotch::new(fs(), 30.0);
        notch.tune(Hertz::from_mhz(-150.0));
        let out = notch.process(&sig_tone);
        let p = mean_power(&out[8192..]);
        assert!((p - 1.0).abs() < 0.05, "signal damaged: {p}");
    }

    #[test]
    fn narrow_relative_to_channel() {
        let notch = TunableNotch::new(fs(), 30.0);
        // Width must be well below the 500 MHz channel bandwidth.
        assert!(notch.notch_width_hz() < 50e6, "{}", notch.notch_width_hz());
    }

    #[test]
    fn retuning_follows_interferer() {
        let mut rng = Rand::new(4);
        let mut notch = TunableNotch::new(fs(), 30.0);
        for f_mhz in [-180.0, -40.0, 90.0, 210.0] {
            let tone =
                Interferer::cw(f_mhz * 1e6, 1.0).generate(16_384, fs().as_hz(), &mut rng);
            notch.tune(Hertz::from_mhz(f_mhz));
            assert_eq!(notch.center(), Some(Hertz::from_mhz(f_mhz)));
            let out = notch.process(&tone);
            let residual = mean_power(&out[8192..]);
            assert!(residual < 0.05, "tone at {f_mhz} MHz survived: {residual}");
        }
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn tune_beyond_nyquist_panics() {
        TunableNotch::new(fs(), 10.0).tune(Hertz::from_mhz(600.0));
    }

    #[test]
    #[should_panic(expected = "Q must be positive")]
    fn bad_q_panics() {
        TunableNotch::new(fs(), 0.0);
    }
}
