//! Adjacent-channel selectivity of the zero-IF front end.
//!
//! The paper's direct-conversion receiver (Fig. 3) tunes its LO to one of 14
//! sub-band centers; everything outside the ~500 MHz channel bandwidth is
//! attenuated by the cascade of the pre-select filter, the LNA band response
//! and the baseband anti-alias filters. For the network simulator we model
//! that cascade as a single piecewise-linear (in dB, vs. spectral gap)
//! rejection curve keyed on the gap between the *occupied bands* of the
//! victim receiver and the interfering transmitter.
//!
//! The model is deliberately frequency-plan agnostic — it takes a gap in Hz
//! rather than a channel index — so `uwb-rf` stays independent of
//! `uwb_phy::bandplan`. The network layer combines this curve with
//! `Channel::gap_hz` / `Channel::overlap_attenuation_db`.

/// Piecewise-linear adjacent-channel rejection curve of the front end.
///
/// * Overlapping occupied bands (`gap == 0`): 0 dB rejection — the in-band
///   spectral-overlap attenuation is accounted for separately.
/// * Any positive gap: at least [`adjacent_rejection_db`](Self::adjacent_rejection_db)
///   of rejection, growing by [`rolloff_db_per_ghz`](Self::rolloff_db_per_ghz)
///   per GHz of additional gap beyond the grid's nominal adjacent-channel
///   guard band.
/// * Below [`floor_db`](Self::floor_db) the leakage is treated as
///   unresolvable against thermal noise and [`rejection_db`](Self::rejection_db)
///   returns `None`, letting the network simulator drop the coupling term
///   entirely (this is what makes far-channel links *bit-identical* to
///   isolated links, not merely close).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelSelectivity {
    /// Rejection at the nominal adjacent-channel gap, in dB (negative).
    pub adjacent_rejection_db: f64,
    /// Additional rejection per GHz of gap beyond the nominal adjacent gap,
    /// in dB/GHz (negative).
    pub rolloff_db_per_ghz: f64,
    /// Rejection floor, in dB (negative): anything at or below this is
    /// reported as `None` (perfectly rejected for simulation purposes).
    pub floor_db: f64,
    /// The gap at which `adjacent_rejection_db` applies, in Hz. On the
    /// 528 MHz grid with 500 MHz occupied bandwidth this is 28 MHz.
    pub adjacent_gap_hz: f64,
}

impl ChannelSelectivity {
    /// Selectivity of the gen2 front end: −30 dB at the adjacent-channel
    /// 28 MHz guard, −30 dB/GHz of additional roll-off, −60 dB floor. On
    /// the 14-channel grid that yields roughly −30 dB (adjacent), −46 dB
    /// (two channels away) and perfect rejection three or more channels
    /// away (gap ≥ 1.084 GHz ⇒ below the floor).
    pub fn gen2() -> ChannelSelectivity {
        ChannelSelectivity {
            adjacent_rejection_db: -30.0,
            rolloff_db_per_ghz: -30.0,
            floor_db: -60.0,
            adjacent_gap_hz: 28e6,
        }
    }

    /// An ideal brick-wall front end: any positive gap is perfectly
    /// rejected. Useful for isolating co-channel effects in tests.
    pub fn brick_wall() -> ChannelSelectivity {
        ChannelSelectivity {
            adjacent_rejection_db: f64::NEG_INFINITY,
            rolloff_db_per_ghz: 0.0,
            floor_db: -1.0,
            adjacent_gap_hz: 0.0,
        }
    }

    /// Front-end rejection for an interferer whose occupied band is
    /// `gap_hz` away from the victim's occupied band.
    ///
    /// Returns `Some(rejection_db)` (≤ 0) while the leakage is above the
    /// floor, `None` once it falls at or below [`floor_db`](Self::floor_db).
    /// A gap of zero (overlapping bands) is in-band: `Some(0.0)`.
    pub fn rejection_db(&self, gap_hz: f64) -> Option<f64> {
        if gap_hz <= 0.0 {
            return Some(0.0);
        }
        let extra_ghz = ((gap_hz - self.adjacent_gap_hz) / 1e9).max(0.0);
        let rej = self.adjacent_rejection_db + self.rolloff_db_per_ghz * extra_ghz;
        if rej <= self.floor_db {
            None
        } else {
            Some(rej)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_band_is_zero() {
        let sel = ChannelSelectivity::gen2();
        assert_eq!(sel.rejection_db(0.0), Some(0.0));
        assert_eq!(sel.rejection_db(-5.0), Some(0.0));
    }

    #[test]
    fn adjacent_gap_hits_nominal_rejection() {
        let sel = ChannelSelectivity::gen2();
        assert_eq!(sel.rejection_db(28e6), Some(-30.0));
    }

    #[test]
    fn grid_rolloff() {
        let sel = ChannelSelectivity::gen2();
        // Two channels away on the 528 MHz grid: gap = 556 MHz.
        let two = sel.rejection_db(556e6).unwrap();
        assert!((two - (-45.84)).abs() < 0.01, "{two}");
        // Three channels away: gap = 1.084 GHz → below −60 dB floor.
        assert_eq!(sel.rejection_db(1.084e9), None);
    }

    #[test]
    fn monotone_nonincreasing_in_gap() {
        let sel = ChannelSelectivity::gen2();
        let mut last = 0.0;
        let mut gap = 0.0;
        while let Some(r) = sel.rejection_db(gap) {
            assert!(r <= last + 1e-12, "gap {gap}: {r} > {last}");
            last = r;
            gap += 37e6;
        }
    }

    #[test]
    fn brick_wall_rejects_everything_off_channel() {
        let sel = ChannelSelectivity::brick_wall();
        assert_eq!(sel.rejection_db(0.0), Some(0.0));
        assert_eq!(sel.rejection_db(1.0), None);
        assert_eq!(sel.rejection_db(28e6), None);
    }
}
