//! Streaming (block-based) RF front-end stages.
//!
//! Gives the analog-model stages the [`uwb_dsp::stream::BlockProcessor`]
//! interface so the receive path can run at a fixed block size with all
//! filter/oscillator state carried across block boundaries:
//!
//! * [`StreamingNotch`] — the tunable front-end notch with its biquad and
//!   both translation oscillators held as carried state. Applied to one
//!   record it is **bit-identical** to [`TunableNotch::process`] on the
//!   whole record, for any block partition.
//! * [`StreamingAgc`] — a *causal, windowed* AGC: gain is recomputed at
//!   fixed absolute-sample window boundaries, so the block partition never
//!   changes the output (the batch [`Agc::process`] is non-causal — it
//!   measures the whole record before applying gain — and therefore cannot
//!   be streamed unchanged).
//! * [`StreamingDownconverter`] — the zero-IF mixer + lowpass with the LO
//!   phase and lowpass cascade state carried. Real passband in, complex
//!   baseband out (not a `BlockProcessor`, which is complex-to-complex);
//!   bit-identical to [`DirectConversionRx::downconvert`] on one record.

use crate::agc::Agc;
use crate::lo::LocalOscillator;
use crate::notch::TunableNotch;
use uwb_dsp::stream::BlockProcessor;
use uwb_dsp::{Biquad, BiquadCascade, Complex, DspScratch, Nco};
use uwb_sim::rng::Rand;
use uwb_sim::time::{Hertz, SampleRate};

/// Carried state of an engaged [`StreamingNotch`].
#[derive(Debug, Clone)]
struct NotchState {
    /// Oscillator translating the interferer to the fs/8 design frequency.
    down: Nco,
    /// Oscillator translating back.
    up: Nco,
    /// The fixed-design-frequency notch biquad (complex state carried).
    biquad: Biquad,
    /// Tuned center, for diagnostics/reset.
    center: Hertz,
}

/// Streaming form of [`TunableNotch`]: shift → notch biquad → shift back,
/// per sample, with oscillator phases and biquad state carried across
/// blocks. See the module docs for the parity contract.
#[derive(Debug, Clone)]
pub struct StreamingNotch {
    fs: SampleRate,
    q: f64,
    engaged: Option<NotchState>,
}

impl StreamingNotch {
    /// Creates a disengaged streaming notch for signals at `fs`.
    ///
    /// # Panics
    ///
    /// Panics if `q <= 0`.
    pub fn new(fs: SampleRate, q: f64) -> Self {
        assert!(q > 0.0, "notch Q must be positive");
        StreamingNotch {
            fs,
            q,
            engaged: None,
        }
    }

    /// Builds the streaming counterpart of `notch`, tuned to the same
    /// center (if engaged).
    pub fn from_notch(notch: &TunableNotch) -> Self {
        let mut s = StreamingNotch::new(notch.sample_rate(), notch.q());
        if let Some(center) = notch.center() {
            s.tune(center);
        }
        s
    }

    /// Tunes the notch to a (possibly negative) baseband frequency,
    /// restarting oscillator and filter state.
    ///
    /// # Panics
    ///
    /// Panics if `|freq|` is not below Nyquist.
    pub fn tune(&mut self, freq: Hertz) {
        assert!(
            freq.as_hz().abs() < self.fs.as_hz() / 2.0,
            "notch frequency must be below Nyquist"
        );
        let f_design = self.fs.as_hz() / 8.0;
        let shift = f_design - freq.as_hz();
        self.engaged = Some(NotchState {
            down: Nco::new(shift, self.fs.as_hz()),
            up: Nco::new(-shift, self.fs.as_hz()),
            biquad: Biquad::notch(0.125, self.q),
            center: freq,
        });
    }

    /// Disengages the notch (blocks pass through untouched).
    pub fn bypass(&mut self) {
        self.engaged = None;
    }

    /// The tuned center frequency, if engaged.
    pub fn center(&self) -> Option<Hertz> {
        self.engaged.as_ref().map(|s| s.center)
    }
}

impl BlockProcessor for StreamingNotch {
    fn process_block(&mut self, block: &mut [Complex], _scratch: &mut DspScratch) {
        let Some(state) = &mut self.engaged else {
            return;
        };
        // Identical per-sample sequence to the batch path (shift whole
        // record, filter, shift back), just interleaved: multiplication
        // order is bitwise-commutative and each operator's state advances
        // one sample at a time.
        for z in block.iter_mut() {
            let shifted = *z * state.down.next_complex();
            let notched = state.biquad.push_complex(shifted);
            *z = notched * state.up.next_complex();
        }
    }

    fn reset(&mut self) {
        if let Some(center) = self.center() {
            self.tune(center);
        }
    }

    fn name(&self) -> &'static str {
        "notch"
    }
}

/// Causal windowed AGC: accumulates input power over fixed `window`-sample
/// spans (counted in absolute stream samples) and recomputes the gain at
/// each span boundary; every sample is scaled by the gain in force when it
/// arrives.
///
/// Because the window grid is anchored to the stream — not to block
/// boundaries — the output is bit-identical for any block partition. This
/// is the form a continuously running receiver actually implements; the
/// whole-record [`Agc::process`] is its non-causal batch idealization.
#[derive(Debug, Clone)]
pub struct StreamingAgc {
    target_rms: f64,
    min_gain: f64,
    max_gain: f64,
    gain: f64,
    initial_gain: f64,
    window: usize,
    acc: f64,
    count: usize,
}

impl StreamingAgc {
    /// A streaming AGC with the limits/target of `agc`, updating its gain
    /// every `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(agc: &Agc, window: usize) -> Self {
        assert!(window > 0, "AGC window must be non-empty");
        StreamingAgc {
            target_rms: agc.target_rms(),
            min_gain: agc.min_gain(),
            max_gain: agc.max_gain(),
            gain: agc.gain(),
            initial_gain: agc.gain(),
            window,
            acc: 0.0,
            count: 0,
        }
    }

    /// The gain currently in force.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The update window in samples.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl BlockProcessor for StreamingAgc {
    fn process_block(&mut self, block: &mut [Complex], _scratch: &mut DspScratch) {
        for z in block.iter_mut() {
            // Measure the *input* (pre-gain) power, apply the gain in
            // force, then update at the absolute window boundary.
            self.acc += z.norm_sqr();
            self.count += 1;
            *z = *z * self.gain;
            if self.count == self.window {
                let p = self.acc / self.window as f64;
                if p > 0.0 {
                    self.gain =
                        (self.target_rms / p.sqrt()).clamp(self.min_gain, self.max_gain);
                }
                self.acc = 0.0;
                self.count = 0;
            }
        }
    }

    fn reset(&mut self) {
        self.gain = self.initial_gain;
        self.acc = 0.0;
        self.count = 0;
    }

    fn name(&self) -> &'static str {
        "rx_agc"
    }
}

/// Streaming zero-IF downconverter: carried LO phase and lowpass cascade
/// state, one block of real passband in → one block of complex baseband
/// out.
///
/// Constructed with the same parameters, one record pushed through block by
/// block is bit-identical to [`DirectConversionRx::downconvert`] on the
/// whole record (same per-sample arithmetic, same phase-noise draw order).
#[derive(Debug, Clone)]
pub struct StreamingDownconverter {
    lo: LocalOscillator,
    g_q: f64,
    phi: f64,
    dc_i: f64,
    dc_q: f64,
    lpf: BiquadCascade,
    fs_hz: f64,
}

impl StreamingDownconverter {
    /// Builds a streaming receiver front end.
    ///
    /// # Panics
    ///
    /// Panics if the LO violates Nyquist at `fs` or `lpf_sections == 0`.
    pub fn new(
        lo: LocalOscillator,
        impairments: crate::downconvert::IqImpairments,
        lpf_cutoff: Hertz,
        lpf_sections: usize,
        fs: SampleRate,
    ) -> Self {
        assert!(
            lo.nominal().as_hz() < fs.as_hz() / 2.0,
            "LO must be below Nyquist"
        );
        let fc = fs.normalize(lpf_cutoff).min(0.49);
        StreamingDownconverter {
            lo,
            g_q: uwb_dsp::math::db_to_amp(impairments.gain_imbalance_db),
            phi: impairments.phase_error_deg.to_radians(),
            dc_i: impairments.dc_offset_i,
            dc_q: impairments.dc_offset_q,
            lpf: BiquadCascade::butterworth_lowpass(lpf_sections, fc),
            fs_hz: fs.as_hz(),
        }
    }

    /// The defaults of [`DirectConversionRx::new`] for a 500 MHz channel at
    /// `carrier`: ideal LO, 280 MHz lowpass, 3 biquad sections.
    pub fn for_channel(carrier: Hertz, fs: SampleRate) -> Self {
        StreamingDownconverter::new(
            LocalOscillator::ideal(carrier),
            crate::downconvert::IqImpairments::ideal(),
            Hertz::from_mhz(280.0),
            3,
            fs,
        )
    }

    /// Downconverts one block of real passband samples into `out`
    /// (`out.len()` must equal `passband.len()`), advancing LO and filter
    /// state.
    pub fn downconvert_block(
        &mut self,
        passband: &[f64],
        out: &mut [Complex],
        rng: &mut Rand,
    ) {
        assert_eq!(
            passband.len(),
            out.len(),
            "output block must match input block"
        );
        for (&x, y) in passband.iter().zip(out.iter_mut()) {
            let lo = self.lo.next_phasor(self.fs_hz, rng);
            let theta = lo.arg();
            let i = x * theta.cos() * std::f64::consts::SQRT_2;
            let q = -x * self.g_q * (theta + self.phi).sin() * std::f64::consts::SQRT_2;
            let mixed = Complex::new(i + self.dc_i, q + self.dc_q);
            *y = self.lpf.push_complex(mixed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::stream::{assert_chunk_invariant, process_record};
    use uwb_sim::Interferer;

    fn fs() -> SampleRate {
        SampleRate::from_gsps(1.0)
    }

    fn tone_plus_ramp(n: usize) -> Vec<Complex> {
        let mut rng = Rand::new(3);
        let mut sig = Interferer::cw(120e6, 1.0).generate(n, fs().as_hz(), &mut rng);
        for (i, z) in sig.iter_mut().enumerate() {
            *z += Complex::new(1e-4 * i as f64, 0.0);
        }
        sig
    }

    #[test]
    fn streaming_notch_matches_batch_bitwise() {
        let sig = tone_plus_ramp(4096);
        let mut batch_notch = TunableNotch::new(fs(), 30.0);
        batch_notch.tune(Hertz::from_mhz(120.0));
        let batch = batch_notch.process(&sig);

        for bl in [1usize, 37, 256, 4096] {
            let mut streamed = sig.clone();
            let mut notch = StreamingNotch::from_notch(&batch_notch);
            let mut scratch = DspScratch::new();
            process_record(&mut notch, &mut streamed, bl, &mut scratch);
            assert_eq!(streamed, batch, "block {bl}");
        }
    }

    #[test]
    fn streaming_notch_bypass_is_identity() {
        let sig = tone_plus_ramp(128);
        let mut notch = StreamingNotch::new(fs(), 30.0);
        let mut buf = sig.clone();
        let mut scratch = DspScratch::new();
        notch.process_block(&mut buf, &mut scratch);
        assert_eq!(buf, sig);
        notch.tune(Hertz::from_mhz(50.0));
        notch.bypass();
        assert_eq!(notch.center(), None);
    }

    #[test]
    fn streaming_agc_is_chunk_invariant() {
        let mut rng = Rand::new(5);
        let mut sig = uwb_sim::awgn::complex_noise(1000, 25.0, &mut rng);
        // Power step halfway: the gain must follow at window boundaries.
        for z in sig[500..].iter_mut() {
            *z = *z * 0.1;
        }
        assert_chunk_invariant(&sig, &[1, 9, 64, 250, 1000, 5000], || {
            StreamingAgc::new(&Agc::for_unit_adc(), 128)
        });
    }

    #[test]
    fn streaming_agc_converges_to_target() {
        let mut rng = Rand::new(6);
        let sig = uwb_sim::awgn::complex_noise(8192, 25.0, &mut rng); // RMS 5
        let mut agc = StreamingAgc::new(&Agc::for_unit_adc(), 256);
        let mut buf = sig.clone();
        let mut scratch = DspScratch::new();
        agc.process_block(&mut buf, &mut scratch);
        // After the first window the gain is in force; measure the tail.
        let rms = uwb_dsp::complex::mean_power(&buf[1024..]).sqrt();
        assert!((rms - 0.355).abs() < 0.05, "rms {rms}");
        assert!(agc.gain() < 1.0);
    }

    #[test]
    fn streaming_downconverter_matches_batch_bitwise() {
        use crate::downconvert::{DirectConversionRx, IqImpairments, Upconverter};
        let fs = SampleRate::new(32e9);
        let carrier = Hertz::from_ghz(5.0);
        let bb: Vec<Complex> = (0..2048)
            .map(|i| {
                let t = (i as f64 - 1024.0) / 256.0;
                Complex::new((-t * t).exp(), 0.0)
            })
            .collect();
        let pass = Upconverter::new(carrier).upconvert(&bb, fs);

        let lo = LocalOscillator::with_impairments(carrier, 20.0, 1e5);
        let imp = IqImpairments::typical();
        let mut batch_rx = DirectConversionRx::new(carrier)
            .with_lo(lo.clone())
            .with_impairments(imp);
        let batch = batch_rx.downconvert(&pass, fs, &mut Rand::new(11));

        for bl in [64usize, 500, 2048] {
            let mut rx =
                StreamingDownconverter::new(lo.clone(), imp, Hertz::from_mhz(280.0), 3, fs);
            let mut rng = Rand::new(11);
            let mut out = vec![Complex::ZERO; pass.len()];
            let mut start = 0;
            while start < pass.len() {
                let end = (start + bl).min(pass.len());
                rx.downconvert_block(&pass[start..end], &mut out[start..end], &mut rng);
                start = end;
            }
            assert_eq!(out, batch, "block {bl}");
        }
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn streaming_notch_tune_beyond_nyquist_panics() {
        StreamingNotch::new(fs(), 10.0).tune(Hertz::from_mhz(600.0));
    }
}
