//! Composed TX and RX front-end chains (paper Fig. 3, analog portion).
//!
//! TX: baseband pulses → quadrature upconverter → (PA scaling to the FCC
//! ceiling). RX: passband → LNA → direct-conversion I/Q downconversion →
//! AGC → samples for the ADCs.

use crate::agc::Agc;
use crate::downconvert::{DirectConversionRx, IqImpairments, Upconverter};
use crate::lna::Lna;
use crate::lo::LocalOscillator;
use uwb_dsp::Complex;
use uwb_sim::rng::Rand;
use uwb_sim::time::{Hertz, SampleRate};

/// Transmit chain: upconversion plus average-power scaling.
#[derive(Debug, Clone)]
pub struct TxChain {
    upconverter: Upconverter,
    /// Target average transmit power (linear, 1.0 ≙ 0 dBm normalized).
    pub target_power: f64,
}

impl TxChain {
    /// Creates a TX chain for the given carrier at the given average power.
    ///
    /// # Panics
    ///
    /// Panics if `target_power <= 0`.
    pub fn new(carrier: Hertz, target_power: f64) -> Self {
        assert!(target_power > 0.0, "target power must be positive");
        TxChain {
            upconverter: Upconverter::new(carrier),
            target_power,
        }
    }

    /// The carrier frequency.
    pub fn carrier(&self) -> Hertz {
        self.upconverter.carrier()
    }

    /// Upconverts and scales a baseband burst to the target average power
    /// (measured over the burst). Returns the passband signal.
    pub fn transmit(&self, baseband: &[Complex], fs: SampleRate) -> Vec<f64> {
        let pass = self.upconverter.upconvert(baseband, fs);
        let p = uwb_dsp::complex::mean_power_real(&pass);
        if p <= 0.0 {
            return pass;
        }
        let k = (self.target_power / p).sqrt();
        pass.iter().map(|&x| x * k).collect()
    }
}

/// Receive chain: LNA → direct conversion → AGC.
#[derive(Debug, Clone)]
pub struct RxChain {
    /// The low-noise amplifier model.
    pub lna: Lna,
    downconverter: DirectConversionRx,
    agc: Agc,
    /// Input-referred noise power used by the LNA noise model (thermal noise
    /// in the signal bandwidth, linear units). Zero disables LNA noise.
    pub input_noise_power: f64,
}

impl RxChain {
    /// An ideal-LO receive chain at `carrier` with the default UWB LNA.
    pub fn new(carrier: Hertz) -> Self {
        RxChain {
            lna: Lna::uwb_default(),
            downconverter: DirectConversionRx::new(carrier),
            agc: Agc::for_unit_adc(),
            input_noise_power: 0.0,
        }
    }

    /// Replaces the LO (adds CFO / phase noise).
    pub fn with_lo(mut self, lo: LocalOscillator) -> Self {
        self.downconverter = self.downconverter.with_lo(lo);
        self
    }

    /// Sets direct-conversion I/Q impairments.
    pub fn with_impairments(mut self, imp: IqImpairments) -> Self {
        self.downconverter = self.downconverter.with_impairments(imp);
        self
    }

    /// Most recent AGC gain.
    pub fn agc_gain(&self) -> f64 {
        self.agc.gain()
    }

    /// Full receive pass: real passband at `fs` in, AGC-leveled complex
    /// baseband out (same rate).
    pub fn receive(&mut self, passband: &[f64], fs: SampleRate, rng: &mut Rand) -> Vec<Complex> {
        let amplified = self.lna.amplify_real(passband, self.input_noise_power, rng);
        let mut baseband = self.downconverter.downconvert(&amplified, fs, rng);
        self.agc.process_in_place(&mut baseband);
        baseband
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 32e9;

    fn fs() -> SampleRate {
        SampleRate::new(FS)
    }

    fn gaussian_burst(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = (i as f64 - n as f64 / 2.0) / (n as f64 / 10.0);
                Complex::new((-t * t).exp(), 0.0)
            })
            .collect()
    }

    #[test]
    fn tx_power_calibrated() {
        let tx = TxChain::new(Hertz::from_ghz(4.488), 0.037); // -14.3 dBm
        let bb = gaussian_burst(4096);
        let pass = tx.transmit(&bb, fs());
        let p = uwb_dsp::complex::mean_power_real(&pass);
        assert!((p - 0.037).abs() / 0.037 < 1e-6, "{p}");
    }

    #[test]
    fn end_to_end_burst_recovered() {
        let carrier = Hertz::from_ghz(5.016);
        // -20 dBm average at the LNA input: comfortably linear for the
        // -6 dBm-IIP3 default LNA (a 0 dBm drive would saturate it).
        let tx = TxChain::new(carrier, 0.01);
        let bb = gaussian_burst(4096);
        let pass = tx.transmit(&bb, fs());
        let mut rx = RxChain::new(carrier);
        let mut rng = Rand::new(1);
        let out = rx.receive(&pass, fs(), &mut rng);
        // Burst envelope should correlate strongly with the template.
        let corr = uwb_dsp::correlation::normalized_correlation(&out, &bb);
        let peak = corr.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(peak > 0.85, "normalized peak {peak}");
    }

    #[test]
    fn agc_levels_output() {
        let carrier = Hertz::from_ghz(3.96);
        let tx = TxChain::new(carrier, 1e-4); // very weak
        let bb = vec![Complex::ONE; 8192];
        let pass = tx.transmit(&bb, fs());
        let mut rx = RxChain::new(carrier);
        let mut rng = Rand::new(2);
        let out = rx.receive(&pass, fs(), &mut rng);
        let rms = uwb_dsp::complex::mean_power(&out).sqrt();
        // AGC target is 0.355 (-9 dBFS).
        assert!((rms - 0.355).abs() < 0.1, "rms {rms}");
        assert!(rx.agc_gain() > 1.0);
    }

    #[test]
    fn works_across_band_plan_extremes() {
        // Lowest and highest paper channels both round-trip.
        let mut rng = Rand::new(7);
        for ghz in [3.432, 10.296] {
            let carrier = Hertz::from_ghz(ghz);
            let tx = TxChain::new(carrier, 0.01);
            let bb = gaussian_burst(4096);
            let pass = tx.transmit(&bb, fs());
            let mut rx = RxChain::new(carrier);
            let out = rx.receive(&pass, fs(), &mut rng);
            let corr = uwb_dsp::correlation::normalized_correlation(&out, &bb);
            let peak = corr.iter().fold(0.0f64, |m, &v| m.max(v));
            assert!(peak > 0.8, "channel at {ghz} GHz: peak {peak}");
        }
    }

    #[test]
    fn wrong_carrier_does_not_demodulate() {
        // TX on ch3, RX on ch8: the 2.64 GHz offset lands far outside the
        // baseband lowpass, so nothing coherent comes through.
        let tx = TxChain::new(Hertz::from_ghz(5.016), 0.01);
        let bb = gaussian_burst(4096);
        let pass = tx.transmit(&bb, fs());
        let mut rx = RxChain::new(Hertz::from_ghz(7.656));
        let mut rng = Rand::new(8);
        let out = rx.receive(&pass, fs(), &mut rng);
        let corr = uwb_dsp::correlation::normalized_correlation(&out, &bb);
        let peak = corr.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(peak < 0.5, "cross-channel leak: peak {peak}");
    }

    #[test]
    fn silent_input_stays_silent() {
        let mut rx = RxChain::new(Hertz::from_ghz(4.488));
        let mut rng = Rand::new(9);
        let out = rx.receive(&vec![0.0; 4096], fs(), &mut rng);
        // No LNA noise configured: output is (numerically) silent.
        assert!(uwb_dsp::complex::mean_power(&out) < 1e-20);
    }

    #[test]
    #[should_panic(expected = "target power")]
    fn bad_power_panics() {
        TxChain::new(Hertz::from_ghz(4.0), 0.0);
    }
}
