//! # uwb-rf — behavioral RF front-end models
//!
//! The analog portion of the paper's direct-conversion transceiver (Fig. 3),
//! as sampled-signal behavioral models:
//!
//! * [`noise`] — thermal noise, noise figure, Friis cascade
//! * [`lna`] — gain / NF / IIP3 low-noise amplifier
//! * [`lo`] — local oscillator with CFO (ppm) and phase noise
//! * [`downconvert`] — quadrature upconverter and zero-IF receiver with I/Q
//!   imbalance and DC offset
//! * [`notch`] — the tunable front-end notch steered by spectral monitoring
//! * [`agc`] — automatic gain control ahead of the ADCs
//! * [`selectivity`] — adjacent-channel rejection curve of the cascade
//! * [`frontend`] — composed [`TxChain`] / [`RxChain`]
//!
//! # Example: upconvert a burst to channel 3 and receive it
//!
//! ```
//! use uwb_rf::{TxChain, RxChain};
//! use uwb_sim::{Rand, time::{Hertz, SampleRate}};
//! use uwb_dsp::Complex;
//!
//! let fs = SampleRate::new(32e9);
//! let carrier = Hertz::from_ghz(4.488);
//! let burst: Vec<Complex> = (0..1024)
//!     .map(|i| {
//!         let t = (i as f64 - 512.0) / 100.0;
//!         Complex::new((-t * t).exp(), 0.0)
//!     })
//!     .collect();
//! let passband = TxChain::new(carrier, 1.0).transmit(&burst, fs);
//! let mut rng = Rand::new(0);
//! let baseband = RxChain::new(carrier).receive(&passband, fs, &mut rng);
//! assert_eq!(baseband.len(), passband.len());
//! ```

#![warn(missing_docs)]

pub mod agc;
pub mod downconvert;
pub mod frontend;
pub mod lna;
pub mod lo;
pub mod noise;
pub mod notch;
pub mod selectivity;
pub mod stream;

pub use agc::Agc;
pub use downconvert::{DirectConversionRx, IqImpairments, Upconverter};
pub use frontend::{RxChain, TxChain};
pub use lna::Lna;
pub use lo::LocalOscillator;
pub use notch::TunableNotch;
pub use selectivity::ChannelSelectivity;
pub use stream::{StreamingAgc, StreamingDownconverter, StreamingNotch};
