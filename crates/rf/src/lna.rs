//! Low-noise amplifier behavioral model.
//!
//! The paper's §1 requires the RF front end to "meet the specifications on
//! noise figure and linearity over a bandwidth larger than 500 MHz". This
//! model captures exactly those two axes: a gain + third-order memoryless
//! nonlinearity (set by IIP3) and an equivalent input noise (set by NF).

use uwb_dsp::math::{db_to_amp, db_to_pow};
use uwb_dsp::Complex;
use uwb_sim::rng::Rand;

/// Behavioral LNA: linear gain, third-order compression, input-referred
/// noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Lna {
    /// Power gain in dB.
    pub gain_db: f64,
    /// Noise figure in dB.
    pub nf_db: f64,
    /// Input-referred third-order intercept point in dBm (50 Ω convention:
    /// 0 dBm ≙ amplitude 0.3162 V here normalized to power = amplitude²).
    pub iip3_dbm: f64,
}

impl Lna {
    /// A typical 3.1–10.6 GHz UWB LNA: 15 dB gain, 4 dB NF, −6 dBm IIP3.
    pub fn uwb_default() -> Self {
        Lna {
            gain_db: 15.0,
            nf_db: 4.0,
            iip3_dbm: -6.0,
        }
    }

    /// Amplitude gain (linear).
    pub fn gain_linear(&self) -> f64 {
        db_to_amp(self.gain_db)
    }

    /// The third-order coefficient `c3` such that
    /// `y = g (x − c3 x³)`; derived from `IIP3` via
    /// `c3 = 4 / (3 A_ip3²)` with `A_ip3² = 2 * P_ip3` (peak amplitude of a
    /// sinusoid carrying `P_ip3` average power, normalized units where
    /// 0 dBm ⇒ P = 1).
    fn c3(&self) -> f64 {
        let p_ip3 = db_to_pow(self.iip3_dbm); // normalized power (1.0 = 0 dBm)
        let a_ip3_sq = 2.0 * p_ip3;
        4.0 / (3.0 * a_ip3_sq)
    }

    /// Amplifies a real passband signal with gain, compression, and
    /// NF-derived noise referenced to `noise_power_in` (the thermal noise
    /// power in the signal bandwidth at the input, linear units).
    ///
    /// The AM-AM curve is the third-order polynomial `g·(x − c3·x³)` up to
    /// the polynomial's own peak, then holds that level (hard saturation) —
    /// a cubic extrapolated past its monotonic region would non-physically
    /// re-expand and invert.
    pub fn amplify_real(
        &self,
        input: &[f64],
        noise_power_in: f64,
        rng: &mut Rand,
    ) -> Vec<f64> {
        let g = self.gain_linear();
        let c3 = self.c3();
        // The cubic g(x - c3 x^3) peaks at x_sat = 1/sqrt(3 c3).
        let x_sat = 1.0 / (3.0 * c3).sqrt();
        let y_sat = g * (2.0 / 3.0) * x_sat;
        // Excess noise added by the LNA, input-referred: (F-1) * N_in.
        let excess = (db_to_pow(self.nf_db) - 1.0) * noise_power_in;
        let sigma = excess.max(0.0).sqrt();
        input
            .iter()
            .map(|&x| {
                let xn = x + sigma * rng.gaussian();
                if xn.abs() >= x_sat {
                    y_sat * xn.signum()
                } else {
                    g * (xn - c3 * xn * xn * xn)
                }
            })
            .collect()
    }

    /// Amplifies a complex baseband signal. The odd-order nonlinearity at
    /// baseband appears as AM-AM compression `y = g·x·(1 − 0.75·c3·|x|²)`,
    /// saturating at the curve's peak as in [`amplify_real`].
    ///
    /// [`amplify_real`]: Lna::amplify_real
    pub fn amplify_complex(
        &self,
        input: &[Complex],
        noise_power_in: f64,
        rng: &mut Rand,
    ) -> Vec<Complex> {
        let g = self.gain_linear();
        let c3 = self.c3();
        // a(1 - 0.75 c3 a^2) peaks at a_sat = 1/sqrt(2.25 c3).
        let a_sat = 1.0 / (2.25 * c3).sqrt();
        let y_sat = g * (2.0 / 3.0) * a_sat;
        let excess = (db_to_pow(self.nf_db) - 1.0) * noise_power_in;
        let sigma = (excess.max(0.0) / 2.0).sqrt();
        input
            .iter()
            .map(|&z| {
                let zn = z + Complex::new(sigma * rng.gaussian(), sigma * rng.gaussian());
                let a = zn.norm();
                if a >= a_sat {
                    zn * (y_sat / a.max(f64::MIN_POSITIVE))
                } else {
                    zn * (g * (1.0 - 0.75 * c3 * a * a))
                }
            })
            .collect()
    }

    /// 1 dB input compression point in dBm, from the standard relation
    /// `P_1dB ≈ IIP3 − 9.6 dB`.
    pub fn p1db_dbm(&self) -> f64 {
        self.iip3_dbm - 9.6
    }
}

impl Default for Lna {
    fn default() -> Self {
        Lna::uwb_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_dsp::math::{amp_to_db, rms};

    #[test]
    fn small_signal_gain() {
        let lna = Lna {
            gain_db: 20.0,
            nf_db: 0.0,
            iip3_dbm: 100.0, // essentially linear
        };
        let mut rng = Rand::new(1);
        let x: Vec<f64> = (0..1000).map(|i| 1e-3 * (i as f64 * 0.1).sin()).collect();
        let y = lna.amplify_real(&x, 0.0, &mut rng);
        let g = amp_to_db(rms(&y) / rms(&x));
        assert!((g - 20.0).abs() < 0.01, "{g}");
    }

    #[test]
    fn compression_at_large_signal() {
        let lna = Lna {
            gain_db: 10.0,
            nf_db: 0.0,
            iip3_dbm: -10.0,
        };
        let mut rng = Rand::new(2);
        // Drive near the compression region.
        let a = 0.2; // power 0.02 = -17 dBm-ish, below IIP3 but compressing
        let x: Vec<f64> = (0..4000).map(|i| a * (i as f64 * 0.3).sin()).collect();
        let y = lna.amplify_real(&x, 0.0, &mut rng);
        let g = amp_to_db(rms(&y) / rms(&x));
        assert!(g < 10.0, "gain should compress: {g}");
        assert!(g > 5.0, "but not collapse: {g}");
    }

    #[test]
    fn third_order_products_appear() {
        // Two tones in, intermod products out.
        let lna = Lna {
            gain_db: 0.0,
            nf_db: 0.0,
            iip3_dbm: 0.0,
        };
        let mut rng = Rand::new(3);
        let n = 4096;
        let (f1, f2) = (0.11, 0.13);
        let x: Vec<f64> = (0..n)
            .map(|i| {
                0.1 * ((std::f64::consts::TAU * f1 * i as f64).cos()
                    + (std::f64::consts::TAU * f2 * i as f64).cos())
            })
            .collect();
        let y = lna.amplify_real(&x, 0.0, &mut rng);
        let psd = uwb_dsp::psd::periodogram_real(&y, 1.0, uwb_dsp::Window::Blackman);
        // IM3 at 2*f1 - f2 = 0.09.
        let im3 = psd.value_at(0.09);
        let carrier = psd.value_at(0.11);
        assert!(im3 > 0.0);
        let ratio_db = 10.0 * (carrier / im3).log10();
        // Should be well above the numeric floor but visible (20..80 dB).
        assert!(ratio_db > 15.0 && ratio_db < 90.0, "IM3 ratio {ratio_db}");
    }

    #[test]
    fn noise_added_per_nf() {
        let lna = Lna {
            gain_db: 0.0,
            nf_db: 3.0103, // F = 2 -> excess = N_in
            iip3_dbm: 100.0,
        };
        let mut rng = Rand::new(4);
        let silence = vec![0.0; 200_000];
        let y = lna.amplify_real(&silence, 0.01, &mut rng);
        let p = uwb_dsp::complex::mean_power_real(&y);
        assert!((p - 0.01).abs() / 0.01 < 0.05, "{p}");
    }

    #[test]
    fn complex_path_gain_matches() {
        let lna = Lna {
            gain_db: 12.0,
            nf_db: 0.0,
            iip3_dbm: 100.0,
        };
        let mut rng = Rand::new(5);
        let x = vec![Complex::new(1e-3, -1e-3); 100];
        let y = lna.amplify_complex(&x, 0.0, &mut rng);
        let g = (y[0].norm() / x[0].norm()).log10() * 20.0;
        assert!((g - 12.0).abs() < 0.01);
    }

    #[test]
    fn p1db_relation() {
        let lna = Lna::uwb_default();
        assert!((lna.p1db_dbm() - (lna.iip3_dbm - 9.6)).abs() < 1e-12);
    }
}
