//! Direct-conversion up/downconversion — the architecture in the paper's
//! title.
//!
//! [`Upconverter`] translates a 500 MHz-wide complex baseband pulse stream to
//! a real passband signal on one of the 14 channels; [`DirectConversionRx`]
//! mixes a real passband signal with quadrature LOs straight to baseband
//! (zero-IF: no image filter, no IF chain), applies the anti-alias lowpass,
//! and models the classic direct-conversion impairments: I/Q gain & phase
//! imbalance and DC offset (self-mixing).

use crate::lo::LocalOscillator;
use uwb_dsp::{BiquadCascade, Complex, Nco};
use uwb_sim::rng::Rand;
use uwb_sim::time::{Hertz, SampleRate};

/// Quadrature upconverter: complex baseband → real passband.
#[derive(Debug, Clone)]
pub struct Upconverter {
    carrier: Hertz,
}

impl Upconverter {
    /// Creates an upconverter to the given carrier.
    pub fn new(carrier: Hertz) -> Self {
        Upconverter { carrier }
    }

    /// The carrier frequency.
    pub fn carrier(&self) -> Hertz {
        self.carrier
    }

    /// Produces `Re{ x(t) · e^{+i 2π f_c t} } · √2` at sample rate `fs`
    /// (the √2 keeps passband power equal to baseband power).
    ///
    /// # Panics
    ///
    /// Panics if `fs` violates Nyquist for the carrier plus baseband content.
    pub fn upconvert(&self, baseband: &[Complex], fs: SampleRate) -> Vec<f64> {
        assert!(
            self.carrier.as_hz() < fs.as_hz() / 2.0,
            "carrier must be below Nyquist"
        );
        let mut nco = Nco::new(self.carrier.as_hz(), fs.as_hz());
        baseband
            .iter()
            .map(|&z| {
                let c = nco.next_complex();
                (z * c).re * std::f64::consts::SQRT_2
            })
            .collect()
    }
}

/// Direct-conversion impairments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IqImpairments {
    /// Gain imbalance between I and Q rails in dB (Q relative to I).
    pub gain_imbalance_db: f64,
    /// Quadrature phase error in degrees (deviation from 90°).
    pub phase_error_deg: f64,
    /// Static DC offset added to each rail (fraction of full scale).
    pub dc_offset_i: f64,
    /// DC offset on the Q rail.
    pub dc_offset_q: f64,
}

impl IqImpairments {
    /// No impairments.
    pub fn ideal() -> Self {
        IqImpairments {
            gain_imbalance_db: 0.0,
            phase_error_deg: 0.0,
            dc_offset_i: 0.0,
            dc_offset_q: 0.0,
        }
    }

    /// A realistic 0.18 µm-era direct-conversion front end: 0.5 dB gain
    /// imbalance, 3° phase error, 2 % DC offset.
    pub fn typical() -> Self {
        IqImpairments {
            gain_imbalance_db: 0.5,
            phase_error_deg: 3.0,
            dc_offset_i: 0.02,
            dc_offset_q: -0.015,
        }
    }

    /// Image-rejection ratio (dB) implied by the gain/phase imbalance:
    /// `IRR = −10 log10[(g² − 2g cosφ + 1) / (g² + 2g cosφ + 1)]`.
    pub fn image_rejection_db(&self) -> f64 {
        let g = uwb_dsp::math::db_to_amp(self.gain_imbalance_db);
        let phi = self.phase_error_deg.to_radians();
        let num = g * g - 2.0 * g * phi.cos() + 1.0;
        let den = g * g + 2.0 * g * phi.cos() + 1.0;
        -10.0 * (num / den).log10()
    }
}

impl Default for IqImpairments {
    fn default() -> Self {
        IqImpairments::ideal()
    }
}

/// Direct-conversion (zero-IF) receiver front end.
#[derive(Debug, Clone)]
pub struct DirectConversionRx {
    lo: LocalOscillator,
    impairments: IqImpairments,
    /// Baseband lowpass cutoff.
    lpf_cutoff: Hertz,
    lpf_sections: usize,
}

impl DirectConversionRx {
    /// A receiver for a 500 MHz channel at `carrier`: ideal LO, 250 MHz
    /// single-sided baseband lowpass, 3 biquad sections.
    pub fn new(carrier: Hertz) -> Self {
        DirectConversionRx {
            lo: LocalOscillator::ideal(carrier),
            impairments: IqImpairments::ideal(),
            lpf_cutoff: Hertz::from_mhz(280.0),
            lpf_sections: 3,
        }
    }

    /// Replaces the LO (e.g. to add CFO/phase noise).
    pub fn with_lo(mut self, lo: LocalOscillator) -> Self {
        self.lo = lo;
        self
    }

    /// Sets the I/Q impairments.
    pub fn with_impairments(mut self, imp: IqImpairments) -> Self {
        self.impairments = imp;
        self
    }

    /// Sets the baseband lowpass cutoff.
    pub fn with_lpf_cutoff(mut self, cutoff: Hertz) -> Self {
        self.lpf_cutoff = cutoff;
        self
    }

    /// The configured impairments.
    pub fn impairments(&self) -> &IqImpairments {
        &self.impairments
    }

    /// Downconverts a real passband signal at `fs` to complex baseband at
    /// the same rate (decimate separately if desired).
    ///
    /// The mixer applies `√2 · x(t) · e^{−i 2π f_lo t}` (with the impaired
    /// quadrature splitter), then the baseband lowpass removes the 2·f_c
    /// image.
    ///
    /// # Panics
    ///
    /// Panics if `fs` violates Nyquist for the LO frequency.
    pub fn downconvert(
        &mut self,
        passband: &[f64],
        fs: SampleRate,
        rng: &mut Rand,
    ) -> Vec<Complex> {
        assert!(
            self.lo.nominal().as_hz() < fs.as_hz() / 2.0,
            "LO must be below Nyquist"
        );
        let imp = self.impairments;
        let g_q = uwb_dsp::math::db_to_amp(imp.gain_imbalance_db);
        let phi = imp.phase_error_deg.to_radians();
        let lo_phasors = self.lo.generate(passband.len(), fs.as_hz(), rng);

        // Impaired quadrature mixing: I uses cos(θ), Q uses -g·sin(θ+φ).
        let mixed: Vec<Complex> = passband
            .iter()
            .zip(&lo_phasors)
            .map(|(&x, lo)| {
                let theta = lo.arg();
                let i = x * theta.cos() * std::f64::consts::SQRT_2;
                let q = -x * g_q * (theta + phi).sin() * std::f64::consts::SQRT_2;
                Complex::new(i + imp.dc_offset_i, q + imp.dc_offset_q)
            })
            .collect();

        // Baseband anti-alias / image-reject lowpass.
        let fc = fs.normalize(self.lpf_cutoff).min(0.49);
        let mut lpf = BiquadCascade::butterworth_lowpass(self.lpf_sections, fc);
        lpf.process_complex(&mixed)
    }
}

/// Removes the residual DC offset by subtracting the complex mean — the
/// standard digital fix-up for direct conversion receivers.
pub fn remove_dc(signal: &[Complex]) -> Vec<Complex> {
    if signal.is_empty() {
        return Vec::new();
    }
    let mean = signal.iter().copied().sum::<Complex>() / signal.len() as f64;
    signal.iter().map(|&z| z - mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 32e9;

    fn fs() -> SampleRate {
        SampleRate::new(FS)
    }

    fn test_pulse_baseband(n: usize) -> Vec<Complex> {
        // A smooth complex baseband burst ~ 100 MHz wide.
        (0..n)
            .map(|i| {
                let t = (i as f64 - n as f64 / 2.0) / (n as f64 / 8.0);
                Complex::new((-t * t).exp(), 0.0)
            })
            .collect()
    }

    #[test]
    fn up_down_round_trip_recovers_pulse() {
        let carrier = Hertz::from_ghz(5.0);
        let bb = test_pulse_baseband(2048);
        let up = Upconverter::new(carrier);
        let pass = up.upconvert(&bb, fs());
        let mut rx = DirectConversionRx::new(carrier);
        let mut rng = Rand::new(1);
        let down = rx.downconvert(&pass, fs(), &mut rng);
        // Correlate against the original to confirm recovery.
        let corr = uwb_dsp::correlation::cross_correlate(&down, &bb);
        let (_, peak) = uwb_dsp::correlation::peak(&corr).unwrap();
        let bb_energy: f64 = bb.iter().map(|z| z.norm_sqr()).sum();
        assert!(
            peak > 0.8 * bb_energy,
            "recovered correlation {peak} vs energy {bb_energy}"
        );
    }

    #[test]
    fn passband_power_matches_baseband_power() {
        let carrier = Hertz::from_ghz(4.0);
        let bb = vec![Complex::ONE; 8192];
        let pass = Upconverter::new(carrier).upconvert(&bb, fs());
        let p = uwb_dsp::complex::mean_power_real(&pass);
        assert!((p - 1.0).abs() < 0.01, "{p}");
    }

    #[test]
    fn passband_centered_at_carrier() {
        let carrier = Hertz::from_ghz(5.0);
        let bb = test_pulse_baseband(4096);
        let pass = Upconverter::new(carrier).upconvert(&bb, fs());
        let psd = uwb_dsp::psd::welch_real(&pass, FS, 2048, uwb_dsp::Window::Hann);
        assert!(
            (psd.peak_frequency().abs() - 5.0e9).abs() < 5e8,
            "peak at {}",
            psd.peak_frequency()
        );
    }

    #[test]
    fn dc_offset_shows_and_removes() {
        let carrier = Hertz::from_ghz(4.0);
        let bb = test_pulse_baseband(2048);
        let pass = Upconverter::new(carrier).upconvert(&bb, fs());
        let mut rx = DirectConversionRx::new(carrier).with_impairments(IqImpairments {
            dc_offset_i: 0.1,
            dc_offset_q: -0.05,
            ..IqImpairments::ideal()
        });
        let mut rng = Rand::new(2);
        let down = rx.downconvert(&pass, fs(), &mut rng);
        let mean = down.iter().copied().sum::<Complex>() / down.len() as f64;
        assert!(mean.norm() > 0.05, "DC offset missing: {mean}");
        let clean = remove_dc(&down);
        let mean2 = clean.iter().copied().sum::<Complex>() / clean.len() as f64;
        assert!(mean2.norm() < 1e-9);
    }

    #[test]
    fn image_rejection_formula() {
        let ideal = IqImpairments::ideal();
        assert!(ideal.image_rejection_db() > 100.0);
        let typ = IqImpairments::typical();
        let irr = typ.image_rejection_db();
        // 0.5 dB / 3 deg -> ~ 25-35 dB IRR.
        assert!(irr > 20.0 && irr < 40.0, "IRR {irr}");
    }

    #[test]
    fn cfo_lo_rotates_constellation() {
        let carrier = Hertz::from_ghz(4.0);
        let bb = vec![Complex::ONE; 16_384];
        let pass = Upconverter::new(carrier).upconvert(&bb, fs());
        let lo = LocalOscillator::with_impairments(carrier, 50.0, 0.0); // 50 ppm
        let mut rx = DirectConversionRx::new(carrier).with_lo(lo);
        let mut rng = Rand::new(3);
        let down = rx.downconvert(&pass, fs(), &mut rng);
        // Phase at the end differs from phase at the start.
        let early = down[2000].arg();
        let late = down[14_000].arg();
        assert!((late - early).abs() > 0.01, "no rotation: {early} {late}");
    }

    #[test]
    fn empty_remove_dc() {
        assert!(remove_dc(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn carrier_above_nyquist_panics() {
        Upconverter::new(Hertz::from_ghz(20.0)).upconvert(&[Complex::ONE], fs());
    }
}
