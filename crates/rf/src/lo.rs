//! Local oscillator model: frequency error (CFO) and phase noise.
//!
//! The direct-conversion receiver of paper Fig. 3 derives its LO from the
//! "Frequency Synthesizer" block. Real synthesizers have a ppm-scale
//! frequency offset from the transmitter's crystal plus random phase noise;
//! both corrupt the downconverted constellation and must be absorbed by the
//! digital back end (PLL/DLL and Viterbi blocks).

use uwb_dsp::Complex;
use uwb_sim::rng::Rand;
use uwb_sim::time::Hertz;

/// A local oscillator with deterministic frequency error and Wiener-process
/// phase noise.
#[derive(Debug, Clone)]
pub struct LocalOscillator {
    nominal: Hertz,
    cfo_ppm: f64,
    /// Phase-noise linewidth (Hz): variance of the per-sample random-walk
    /// increment is `2π · linewidth / fs`.
    linewidth_hz: f64,
    phase: f64,
}

impl LocalOscillator {
    /// An ideal oscillator at `nominal`.
    pub fn ideal(nominal: Hertz) -> Self {
        LocalOscillator {
            nominal,
            cfo_ppm: 0.0,
            linewidth_hz: 0.0,
            phase: 0.0,
        }
    }

    /// An impaired oscillator with `cfo_ppm` parts-per-million frequency
    /// error and Lorentzian `linewidth_hz` phase noise.
    ///
    /// # Panics
    ///
    /// Panics if `linewidth_hz < 0`.
    pub fn with_impairments(nominal: Hertz, cfo_ppm: f64, linewidth_hz: f64) -> Self {
        assert!(linewidth_hz >= 0.0, "linewidth must be non-negative");
        LocalOscillator {
            nominal,
            cfo_ppm,
            linewidth_hz,
            phase: 0.0,
        }
    }

    /// Nominal frequency.
    pub fn nominal(&self) -> Hertz {
        self.nominal
    }

    /// Actual frequency including the ppm offset.
    pub fn actual(&self) -> Hertz {
        Hertz::new(self.nominal.as_hz() * (1.0 + self.cfo_ppm * 1e-6))
    }

    /// The absolute frequency error in hertz.
    pub fn cfo_hz(&self) -> f64 {
        self.actual().as_hz() - self.nominal.as_hz()
    }

    /// Emits the next unit-magnitude LO phasor at sample rate `fs_hz`,
    /// advancing internal phase (and accumulating phase noise) — the
    /// single-sample streaming form of [`LocalOscillator::generate`], with
    /// identical arithmetic and draw order.
    #[inline]
    pub fn next_phasor(&mut self, fs_hz: f64, rng: &mut Rand) -> Complex {
        let step = std::f64::consts::TAU * self.actual().as_hz() / fs_hz;
        let out = Complex::cis(self.phase);
        self.phase += step;
        if self.linewidth_hz > 0.0 {
            let pn_sigma = (std::f64::consts::TAU * self.linewidth_hz / fs_hz).sqrt();
            self.phase += pn_sigma * rng.gaussian();
        }
        if self.phase > std::f64::consts::PI {
            self.phase = self.phase.rem_euclid(std::f64::consts::TAU);
        }
        out
    }

    /// Generates `n` unit-magnitude LO phasors at sample rate `fs_hz`,
    /// advancing internal phase (and accumulating phase noise).
    pub fn generate(&mut self, n: usize, fs_hz: f64, rng: &mut Rand) -> Vec<Complex> {
        (0..n).map(|_| self.next_phasor(fs_hz, rng)).collect()
    }

    /// The *baseband-equivalent* rotation this LO imprints after mixing
    /// against an ideal transmitter LO of the same nominal frequency: a
    /// residual CFO spin plus phase noise. This is how link simulations at
    /// complex baseband apply LO impairments without a passband pass.
    pub fn baseband_rotation(
        &mut self,
        signal: &[Complex],
        fs_hz: f64,
        rng: &mut Rand,
    ) -> Vec<Complex> {
        let step = std::f64::consts::TAU * self.cfo_hz() / fs_hz;
        let pn_sigma = if self.linewidth_hz > 0.0 {
            (std::f64::consts::TAU * self.linewidth_hz / fs_hz).sqrt()
        } else {
            0.0
        };
        let mut out = Vec::with_capacity(signal.len());
        for &z in signal {
            out.push(z * Complex::cis(self.phase));
            self.phase += step;
            if pn_sigma > 0.0 {
                self.phase += pn_sigma * rng.gaussian();
            }
            if self.phase > std::f64::consts::PI {
                self.phase = self.phase.rem_euclid(std::f64::consts::TAU);
            }
        }
        out
    }

    /// Resets the accumulated phase to zero.
    pub fn reset(&mut self) {
        self.phase = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_lo_is_pure_tone() {
        let mut lo = LocalOscillator::ideal(Hertz::from_mhz(100.0));
        let mut rng = Rand::new(1);
        let fs = 1e9;
        let sig = lo.generate(4096, fs, &mut rng);
        let psd = uwb_dsp::psd::welch(&sig, fs, 1024, uwb_dsp::Window::Hann);
        assert!((psd.peak_frequency() - 100e6).abs() < fs / 1024.0);
        assert!(sig.iter().all(|z| (z.norm() - 1.0).abs() < 1e-12));
    }

    #[test]
    fn cfo_arithmetic() {
        let lo = LocalOscillator::with_impairments(Hertz::from_ghz(3.432), 20.0, 0.0);
        // 20 ppm of 3.432 GHz = 68.64 kHz.
        assert!((lo.cfo_hz() - 68_640.0).abs() < 1.0);
        assert!(lo.actual().as_hz() > lo.nominal().as_hz());
    }

    #[test]
    fn baseband_rotation_spins_at_cfo() {
        let mut lo = LocalOscillator::with_impairments(Hertz::from_ghz(1.0), 100.0, 0.0);
        let mut rng = Rand::new(2);
        let fs = 1e9;
        let dc = vec![Complex::ONE; 1000];
        let out = lo.baseband_rotation(&dc, fs, &mut rng);
        // Phase advances 2*pi*cfo/fs per sample = 2*pi*1e5/1e9.
        let expected_step = std::f64::consts::TAU * 1e5 / 1e9;
        let measured = (out[1] * out[0].conj()).arg();
        assert!((measured - expected_step).abs() < 1e-9);
    }

    #[test]
    fn phase_noise_decorrelates() {
        let mut lo = LocalOscillator::with_impairments(Hertz::from_ghz(1.0), 0.0, 1e6);
        let mut rng = Rand::new(3);
        let fs = 1e9;
        let dc = vec![Complex::ONE; 100_000];
        let out = lo.baseband_rotation(&dc, fs, &mut rng);
        // Average phasor magnitude decays with lag (coherence loss).
        let corr_short: Complex = (0..50_000)
            .map(|i| out[i + 10] * out[i].conj())
            .sum::<Complex>()
            / 50_000.0;
        let corr_long: Complex = (0..50_000)
            .map(|i| out[i + 40_000] * out[i].conj())
            .sum::<Complex>()
            / 50_000.0;
        assert!(corr_short.norm() > corr_long.norm(), "{} vs {}", corr_short.norm(), corr_long.norm());
    }

    #[test]
    fn reset_restores_phase() {
        let mut lo = LocalOscillator::ideal(Hertz::from_mhz(10.0));
        let mut rng = Rand::new(4);
        let a = lo.generate(16, 1e9, &mut rng);
        lo.reset();
        let b = lo.generate(16, 1e9, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "linewidth")]
    fn negative_linewidth_panics() {
        LocalOscillator::with_impairments(Hertz::from_ghz(1.0), 0.0, -1.0);
    }
}
