//! The gen1 end-to-end link: carrierless TX, interleaved-flash RX.

use crate::config::Gen1Config;
use crate::sync::{Gen1Sync, SyncResult};
use uwb_adc::{InterleaveMismatch, InterleavedAdc};
use uwb_phy::pn::msequence_chips;
use uwb_phy::pulse::PulseShape;
use uwb_sim::rng::Rand;

/// A transmitted gen1 burst (real baseband samples — no carrier).
#[derive(Debug, Clone, PartialEq)]
pub struct Gen1Burst {
    /// Real samples at the configured rate.
    pub samples: Vec<f64>,
    /// Sample index where slot 0's pulse starts.
    pub slot0_start: usize,
    /// The data bits carried (after the preamble).
    pub bits: Vec<bool>,
}

/// The gen1 transmitter: monocycle pulses, BPSK chips, heavy spreading.
#[derive(Debug, Clone)]
pub struct Gen1Transmitter {
    config: Gen1Config,
    pulse: Vec<f64>,
}

impl Gen1Transmitter {
    /// Creates a transmitter.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: Gen1Config) -> Self {
        config.validate().expect("invalid gen1 configuration");
        let pulse = PulseShape::Monocycle {
            center: config.pulse_center,
        }
        .generate(config.sample_rate);
        Gen1Transmitter { config, pulse }
    }

    /// The configuration.
    pub fn config(&self) -> &Gen1Config {
        &self.config
    }

    /// The monocycle template.
    pub fn pulse(&self) -> &[f64] {
        &self.pulse
    }

    /// Builds the chip (slot amplitude) sequence: preamble + spread bits.
    pub fn chip_sequence(&self, bits: &[bool]) -> Vec<f64> {
        let pn = msequence_chips(self.config.preamble_degree);
        let mut chips = Vec::new();
        for _ in 0..self.config.preamble_repeats {
            chips.extend_from_slice(&pn);
        }
        for &b in bits {
            let a = if b { 1.0 } else { -1.0 };
            for _ in 0..self.config.pulses_per_bit {
                chips.push(a);
            }
        }
        chips
    }

    /// Synthesizes the pulse waveform for the given data bits.
    pub fn transmit(&self, bits: &[bool]) -> Gen1Burst {
        let chips = self.chip_sequence(bits);
        let sps = self.config.slot_samples;
        let guard = self.pulse.len() + sps;
        let n = chips.len() * sps + 2 * guard;
        let mut samples = vec![0.0; n];
        for (k, &c) in chips.iter().enumerate() {
            let start = guard + k * sps;
            for (j, &p) in self.pulse.iter().enumerate() {
                samples[start + j] += c * p;
            }
        }
        Gen1Burst {
            samples,
            slot0_start: guard,
            bits: bits.to_vec(),
        }
    }

    /// One preamble period as a sampled template (for the sync engine).
    pub fn preamble_template(&self) -> Vec<f64> {
        self.preamble_template_periods(1)
    }

    /// `periods` consecutive preamble periods as one coherent template.
    /// Longer templates buy acquisition sensitivity at low SNR (the modeled
    /// hardware accumulates the same gain across dwells).
    ///
    /// # Panics
    ///
    /// Panics if `periods == 0`.
    pub fn preamble_template_periods(&self, periods: usize) -> Vec<f64> {
        assert!(periods > 0, "need at least one period");
        let pn = msequence_chips(self.config.preamble_degree);
        let sps = self.config.slot_samples;
        let total_chips = pn.len() * periods;
        let n = (total_chips - 1) * sps + self.pulse.len();
        let mut out = vec![0.0; n];
        for rep in 0..periods {
            for (k, &c) in pn.iter().enumerate() {
                let start = (rep * pn.len() + k) * sps;
                for (j, &p) in self.pulse.iter().enumerate() {
                    out[start + j] += c * p;
                }
            }
        }
        out
    }
}

/// A decoded gen1 packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Gen1Decoded {
    /// Demodulated bits.
    pub bits: Vec<bool>,
    /// Synchronization diagnostics.
    pub sync: SyncResult,
}

/// The gen1 receiver: interleaved flash ADC + digital back end.
#[derive(Debug, Clone)]
pub struct Gen1Receiver {
    config: Gen1Config,
    adc: InterleavedAdc,
    pulse: Vec<f64>,
    sync: Gen1Sync,
}

impl Gen1Receiver {
    /// Creates a receiver; `mismatch` configures the interleaved-ADC lane
    /// errors and `seed` their realization.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: Gen1Config, mismatch: InterleaveMismatch, seed: u64) -> Self {
        config.validate().expect("invalid gen1 configuration");
        let mut rng = Rand::new(seed);
        let adc = InterleavedAdc::new(
            4,
            config.adc_bits,
            1.0,
            config.sample_rate.as_hz(),
            mismatch,
            &mut rng,
        );
        let tx = Gen1Transmitter::new(config.clone());
        // Integrate all-but-one preamble period coherently for sensitivity
        // down to the link's operating SNR.
        let template = tx.preamble_template_periods((config.preamble_repeats - 1).max(1));
        let pulse = tx.pulse().to_vec();
        let sync = Gen1Sync::new(template, config.clone());
        Gen1Receiver {
            config,
            adc,
            pulse,
            sync,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &Gen1Config {
        &self.config
    }

    /// Digitizes with AGC + the 4-way interleaved flash ADC.
    pub fn digitize(&self, samples: &[f64]) -> Vec<f64> {
        let rms = uwb_dsp::math::rms(samples);
        if rms <= 0.0 {
            return samples.to_vec();
        }
        let gain = 0.25 / rms;
        let scaled: Vec<f64> = samples.iter().map(|&x| x * gain).collect();
        self.adc.convert_block(&scaled)
    }

    /// Full receive pass: digitize, synchronize, demodulate `n_bits`.
    ///
    /// Returns `None` if synchronization fails.
    pub fn receive(&self, samples: &[f64], n_bits: usize) -> Option<Gen1Decoded> {
        let digitized = self.digitize(samples);
        let sync = self.sync.acquire(&digitized)?;
        let bits = self.demodulate(&digitized, sync.offset, n_bits);
        Some(Gen1Decoded { bits, sync })
    }

    /// Demodulates `n_bits` starting from a known preamble offset.
    pub fn demodulate(&self, digitized: &[f64], offset: usize, n_bits: usize) -> Vec<bool> {
        let sps = self.config.slot_samples;
        let mf = uwb_dsp::correlation::cross_correlate_real(digitized, &self.pulse);
        let preamble_chips =
            ((1usize << self.config.preamble_degree) - 1) * self.config.preamble_repeats;
        let ppb = self.config.pulses_per_bit;
        let mut bits = Vec::with_capacity(n_bits);
        for k in 0..n_bits {
            let mut acc = 0.0;
            for r in 0..ppb {
                let slot = preamble_chips + k * ppb + r;
                let idx = offset + slot * sps;
                if idx < mf.len() {
                    acc += mf[idx];
                }
            }
            bits.push(acc > 0.0);
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uwb_sim::awgn::add_awgn_real;

    fn short_config() -> Gen1Config {
        // Full 162x spreading makes tests slow; use a reduced spreading
        // factor with the same architecture.
        Gen1Config {
            pulses_per_bit: 8,
            ..Gen1Config::demonstrated_193kbps()
        }
    }

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Rand::new(seed);
        (0..n).map(|_| rng.bit()).collect()
    }

    #[test]
    fn clean_link_round_trip() {
        let cfg = short_config();
        let tx = Gen1Transmitter::new(cfg.clone());
        let rx = Gen1Receiver::new(cfg, InterleaveMismatch::none(), 1);
        let bits = random_bits(16, 1);
        let burst = tx.transmit(&bits);
        let decoded = rx.receive(&burst.samples, bits.len()).expect("sync failed");
        assert_eq!(decoded.bits, bits);
        assert!(decoded.sync.detected);
    }

    #[test]
    fn noisy_link_with_adc_mismatch() {
        let cfg = short_config();
        let tx = Gen1Transmitter::new(cfg.clone());
        let rx = Gen1Receiver::new(cfg, InterleaveMismatch::typical(), 2);
        let bits = random_bits(16, 3);
        let burst = tx.transmit(&bits);
        let mut rng = Rand::new(4);
        let p = uwb_dsp::complex::mean_power_real(&burst.samples);
        let noisy = add_awgn_real(&burst.samples, p, &mut rng); // 0 dB/sample
        let decoded = rx.receive(&noisy, bits.len()).expect("sync failed");
        // 8x spreading + matched filter: should be error-free at this SNR.
        assert_eq!(decoded.bits, bits);
    }

    #[test]
    fn chip_sequence_layout() {
        let cfg = short_config();
        let tx = Gen1Transmitter::new(cfg.clone());
        let chips = tx.chip_sequence(&[true, false]);
        let preamble = 127 * cfg.preamble_repeats;
        assert_eq!(chips.len(), preamble + 2 * cfg.pulses_per_bit);
        assert!(chips[preamble..preamble + 8].iter().all(|&c| c == 1.0));
        assert!(chips[preamble + 8..].iter().all(|&c| c == -1.0));
    }

    #[test]
    fn demonstrated_config_slow_but_valid() {
        // The true 162x spreading config still synthesizes (just one bit).
        let cfg = Gen1Config::demonstrated_193kbps();
        let tx = Gen1Transmitter::new(cfg.clone());
        let burst = tx.transmit(&[true]);
        // 508 preamble chips + 162 data chips at 64 samples.
        assert!(burst.samples.len() > (508 + 162) * 64);
    }

    #[test]
    fn monocycle_occupies_baseband() {
        // Gen1 is carrierless: the radiated spectrum peaks near the
        // monocycle center with no DC content.
        let cfg = short_config();
        let tx = Gen1Transmitter::new(cfg.clone());
        let burst = tx.transmit(&random_bits(32, 9));
        let psd = uwb_dsp::psd::welch_real(
            &burst.samples,
            cfg.sample_rate.as_hz(),
            2048,
            uwb_dsp::Window::Hann,
        );
        let peak = psd.peak_frequency().abs();
        assert!(
            peak > 100e6 && peak < 900e6,
            "spectral peak at {peak} (expected near the 500 MHz monocycle center)"
        );
        // DC is suppressed (monocycle has no zero-frequency content).
        assert!(psd.value_at(0.0) < psd.value_at(peak) / 100.0);
    }

    #[test]
    fn demodulate_with_known_offset() {
        let cfg = short_config();
        let tx = Gen1Transmitter::new(cfg.clone());
        let rx = Gen1Receiver::new(cfg, InterleaveMismatch::none(), 10);
        let bits = random_bits(20, 11);
        let burst = tx.transmit(&bits);
        let digitized = rx.digitize(&burst.samples);
        let decoded = rx.demodulate(&digitized, burst.slot0_start, bits.len());
        assert_eq!(decoded, bits);
    }

    #[test]
    fn off_by_large_offset_garbles() {
        // Demodulating from a wrong offset must not accidentally look right.
        let cfg = short_config();
        let tx = Gen1Transmitter::new(cfg.clone());
        let rx = Gen1Receiver::new(cfg.clone(), InterleaveMismatch::none(), 12);
        let bits = random_bits(64, 13);
        let burst = tx.transmit(&bits);
        let digitized = rx.digitize(&burst.samples);
        let wrong = burst.slot0_start + cfg.slot_samples / 2;
        let decoded = rx.demodulate(&digitized, wrong, bits.len());
        let errs = decoded.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert!(errs > 8, "half-slot offset produced only {errs}/64 errors");
    }

    #[test]
    fn multi_period_template_is_periodic_extension() {
        let cfg = short_config();
        let tx = Gen1Transmitter::new(cfg.clone());
        let one = tx.preamble_template();
        let three = tx.preamble_template_periods(3);
        let period = 127 * cfg.slot_samples;
        assert_eq!(three.len(), one.len() + 2 * period);
        // The first period of the long template matches the short one except
        // where the next period's pulses overlap the tail.
        for i in 0..period - cfg.slot_samples {
            assert!(
                (one[i] - three[i]).abs() < 1e-12,
                "mismatch at sample {i}"
            );
        }
    }

    #[test]
    fn sync_fails_on_noise() {
        let cfg = short_config();
        let rx = Gen1Receiver::new(cfg, InterleaveMismatch::none(), 5);
        let mut rng = Rand::new(6);
        let noise: Vec<f64> = (0..60_000).map(|_| rng.gaussian()).collect();
        assert!(rx.receive(&noise, 4).is_none());
    }
}
