//! # uwb-gen1 — the first-generation baseband pulsed UWB transceiver
//!
//! Reproduction of the single-chip transceiver of the paper's §2 / Fig. 1:
//! carrierless Gaussian-monocycle pulses (no downconverter), a 2 GSps
//! 4-way time-interleaved flash ADC, fully digital timing synchronization
//! parallelized to lock in under 70 µs, and the demonstrated 193 kbps link.
//!
//! * [`config`] — the demonstrated operating point and its timing model
//! * [`link`] — transmitter / receiver pair
//! * [`sync`] — the parallelized synchronization engine
//! * [`power`] — gen1 block power breakdown
//!
//! # Example
//!
//! ```
//! use uwb_gen1::{Gen1Config, Gen1Transmitter, Gen1Receiver};
//! use uwb_adc::InterleaveMismatch;
//!
//! let cfg = Gen1Config { pulses_per_bit: 8, ..Gen1Config::demonstrated_193kbps() };
//! let tx = Gen1Transmitter::new(cfg.clone());
//! let rx = Gen1Receiver::new(cfg, InterleaveMismatch::none(), 7);
//! let bits = vec![true, false, true, true];
//! let burst = tx.transmit(&bits);
//! let decoded = rx.receive(&burst.samples, bits.len()).expect("sync");
//! assert_eq!(decoded.bits, bits);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod link;
pub mod power;
pub mod sync;

pub use config::Gen1Config;
pub use link::{Gen1Burst, Gen1Decoded, Gen1Receiver, Gen1Transmitter};
pub use power::Gen1PowerModel;
pub use sync::{Gen1Sync, SyncResult};
