//! Configuration of the first-generation baseband transceiver (paper §2).
//!
//! The gen1 chip radiates carrierless baseband pulses, digitizes with a
//! 2 GSps 4-way time-interleaved flash ADC, performs timing synchronization
//! "fully … in the digital back end", and demonstrated a 193 kbps link with
//! packet synchronization below 70 µs.

use uwb_sim::time::{Hertz, SampleRate};

/// Gen1 link configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Gen1Config {
    /// ADC / simulation sample rate (the chip's 2 GSps).
    pub sample_rate: SampleRate,
    /// Samples per pulse slot (chip period × sample rate).
    pub slot_samples: usize,
    /// Pulses integrated per data bit (spreading factor).
    pub pulses_per_bit: usize,
    /// Monocycle peak-response frequency.
    pub pulse_center: Hertz,
    /// m-sequence degree of the acquisition preamble.
    pub preamble_degree: u32,
    /// Preamble periods transmitted.
    pub preamble_repeats: usize,
    /// Flash ADC resolution in bits.
    pub adc_bits: u32,
    /// Number of parallel correlator phases in the sync engine. The gen1
    /// paper reaches < 70 µs "through further parallelization" on top of
    /// the ADC's 4-way split.
    pub sync_parallelism: usize,
}

impl Gen1Config {
    /// The demonstrated operating point: 2 GSps, 32 ns slots (31.25 MHz
    /// PRF), 162 pulses/bit ⇒ **192.9 kbps**, 4-bit flash, 512-way
    /// parallel search.
    pub fn demonstrated_193kbps() -> Self {
        Gen1Config {
            sample_rate: SampleRate::from_gsps(2.0),
            slot_samples: 64,
            pulses_per_bit: 162,
            pulse_center: Hertz::from_mhz(500.0),
            preamble_degree: 7,
            preamble_repeats: 4,
            adc_bits: 4,
            sync_parallelism: 512,
        }
    }

    /// Pulse repetition frequency.
    pub fn prf(&self) -> Hertz {
        Hertz::new(self.sample_rate.as_hz() / self.slot_samples as f64)
    }

    /// Information bit rate.
    pub fn bit_rate(&self) -> f64 {
        self.prf().as_hz() / self.pulses_per_bit as f64
    }

    /// Preamble period length in samples.
    pub fn preamble_period_samples(&self) -> usize {
        ((1usize << self.preamble_degree) - 1) * self.slot_samples
    }

    /// Worst-case serial-search synchronization time in microseconds: all
    /// code phases in one period, each dwelling one preamble period, spread
    /// over the parallel correlators.
    pub fn sync_time_us(&self) -> f64 {
        let phases = self.preamble_period_samples();
        let dwell_s = self.preamble_period_samples() as f64 / self.sample_rate.as_hz();
        let dwells = phases.div_ceil(self.sync_parallelism);
        dwells as f64 * dwell_s * 1e6
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Never panics; returns an error string instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.slot_samples < 8 {
            return Err("slot must be at least 8 samples".into());
        }
        if self.pulses_per_bit == 0 {
            return Err("pulses_per_bit must be at least 1".into());
        }
        if !(3..=12).contains(&self.preamble_degree) {
            return Err("preamble_degree must be 3..=12".into());
        }
        if self.preamble_repeats < 2 {
            return Err("need at least 2 preamble periods".into());
        }
        if self.sync_parallelism == 0 {
            return Err("sync_parallelism must be at least 1".into());
        }
        if self.pulse_center.as_hz() >= self.sample_rate.as_hz() / 2.0 {
            return Err("pulse center must be below Nyquist".into());
        }
        Ok(())
    }
}

impl Default for Gen1Config {
    fn default() -> Self {
        Gen1Config::demonstrated_193kbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demonstrated_rate_is_193kbps() {
        let cfg = Gen1Config::demonstrated_193kbps();
        cfg.validate().unwrap();
        let rate = cfg.bit_rate();
        assert!((rate - 193e3).abs() / 193e3 < 0.01, "rate {rate}");
        assert_eq!(cfg.prf().as_mhz(), 31.25);
    }

    #[test]
    fn sync_under_70us() {
        let cfg = Gen1Config::demonstrated_193kbps();
        let t = cfg.sync_time_us();
        assert!(t < 70.0, "sync time {t} µs");
        assert!(t > 10.0, "suspiciously fast: {t} µs");
    }

    #[test]
    fn serial_search_would_blow_the_budget() {
        // Without parallelization the same search takes milliseconds — the
        // reason the paper parallelizes.
        let mut cfg = Gen1Config::demonstrated_193kbps();
        cfg.sync_parallelism = 1;
        assert!(cfg.sync_time_us() > 10_000.0);
    }

    #[test]
    fn invalid_configs() {
        let cfg = Gen1Config {
            pulses_per_bit: 0,
            ..Gen1Config::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = Gen1Config {
            slot_samples: 2,
            ..Gen1Config::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = Gen1Config {
            pulse_center: Hertz::from_ghz(1.5),
            ..Gen1Config::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = Gen1Config {
            preamble_repeats: 1,
            ..Gen1Config::default()
        };
        assert!(cfg.validate().is_err());
    }
}
