//! Gen1 power model (paper Fig. 1 blocks).
//!
//! Same activity-based method as `uwb_phy::power`, with the gen1 block set:
//! no downconverter (carrierless), a 2 GSps 4-way interleaved flash ADC,
//! and a heavily parallelized all-digital synchronizer.

use crate::config::Gen1Config;
use uwb_phy::power::{BlockPower, EnergyConstants, PowerBreakdown, PowerClass};

/// Gen1 receiver power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gen1PowerModel {
    /// Energy constants.
    pub energy: EnergyConstants,
    /// RF front end (LNA + buffers; no mixer/synthesizer — baseband radio).
    pub rf_mw: f64,
    /// PLL clock generation.
    pub pll_mw: f64,
    /// Fraction of time the sync engine is active.
    pub sync_duty: f64,
}

impl Gen1PowerModel {
    /// Default 0.18 µm model.
    pub fn cmos180() -> Self {
        Gen1PowerModel {
            energy: EnergyConstants::cmos180(),
            rf_mw: 12.0,
            pll_mw: 10.0,
            sync_duty: 0.1,
        }
    }

    /// Computes the block breakdown for a configuration.
    pub fn breakdown(&self, config: &Gen1Config) -> PowerBreakdown {
        let e = self.energy;
        let fs = config.sample_rate.as_hz();
        let mw = 1e3;
        let mut blocks = Vec::new();

        blocks.push(BlockPower {
            name: "RF front end (no mixer)".into(),
            mw: self.rf_mw,
            class: PowerClass::Analog,
        });
        blocks.push(BlockPower {
            name: "PLL".into(),
            mw: self.pll_mw,
            class: PowerClass::Analog,
        });

        // 4-way interleaved flash: each lane runs at fs/4 with 2^b - 1
        // comparators firing per conversion.
        let comparators = ((1u32 << config.adc_bits) - 1) as f64;
        blocks.push(BlockPower {
            name: format!("4-way {}-bit flash ADC @ 2 GSps", config.adc_bits),
            mw: fs * comparators * e.comparator * mw,
            class: PowerClass::Adc,
        });

        // High-speed buffers between ADC and back end (Fig. 1).
        blocks.push(BlockPower {
            name: "high-speed buffers".into(),
            mw: fs * 4.0 * e.add * mw,
            class: PowerClass::Digital,
        });

        // Pulse matched filter at the full rate.
        let pulse_taps = uwb_phy::pulse::PulseShape::Monocycle {
            center: config.pulse_center,
        }
        .generate(config.sample_rate)
        .len();
        blocks.push(BlockPower {
            name: "pulse matched filter".into(),
            mw: pulse_taps as f64 * fs * e.mac * mw,
            class: PowerClass::Digital,
        });

        // Coarse-acquisition correlator bank (duty-cycled).
        blocks.push(BlockPower {
            name: format!("{}-way sync bank", config.sync_parallelism),
            mw: config.sync_parallelism as f64
                * config.prf().as_hz()
                * e.mac
                * self.sync_duty
                * mw,
            class: PowerClass::Digital,
        });

        // Bit integrator (pulses-per-bit accumulate).
        blocks.push(BlockPower {
            name: "despreading integrator".into(),
            mw: config.prf().as_hz() * e.add * mw,
            class: PowerClass::Digital,
        });

        // Clocking overhead.
        let digital: f64 = blocks
            .iter()
            .filter(|b| b.class == PowerClass::Digital)
            .map(|b| b.mw)
            .sum();
        blocks.push(BlockPower {
            name: "clock tree + control".into(),
            mw: 0.1 * digital,
            class: PowerClass::Digital,
        });

        PowerBreakdown { blocks }
    }
}

impl Default for Gen1PowerModel {
    fn default() -> Self {
        Gen1PowerModel::cmos180()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_plus_adc_dominates() {
        let bd = Gen1PowerModel::cmos180().breakdown(&Gen1Config::demonstrated_193kbps());
        let f = bd.digital_and_adc_fraction();
        assert!(f > 0.5, "digital+ADC fraction {f}");
    }

    #[test]
    fn totals_plausible() {
        let bd = Gen1PowerModel::cmos180().breakdown(&Gen1Config::demonstrated_193kbps());
        let t = bd.total_mw();
        assert!(t > 20.0 && t < 300.0, "total {t} mW");
    }

    #[test]
    fn adc_power_scales_with_comparator_count() {
        let model = Gen1PowerModel::cmos180();
        let mut lo = Gen1Config::demonstrated_193kbps();
        lo.adc_bits = 1;
        let mut hi = Gen1Config::demonstrated_193kbps();
        hi.adc_bits = 4;
        let adc = |cfg: &Gen1Config| model.breakdown(cfg).class_mw(PowerClass::Adc);
        // (2^4 - 1) / (2^1 - 1) = 15.
        assert!((adc(&hi) / adc(&lo) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn parallelism_costs_power() {
        let model = Gen1PowerModel::cmos180();
        let mut narrow = Gen1Config::demonstrated_193kbps();
        narrow.sync_parallelism = 64;
        let wide = Gen1Config::demonstrated_193kbps(); // 512
        assert!(
            model.breakdown(&wide).total_mw() > model.breakdown(&narrow).total_mw()
        );
    }
}
