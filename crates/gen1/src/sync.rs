//! Gen1 packet synchronization.
//!
//! "The timing synchronization is fully performed in the digital back end.
//! Through further parallelization, packet synchronization is obtained in
//! less than 70 µs." (paper §2). The engine searches every sample phase of
//! one preamble period with a bank of `sync_parallelism` correlators and
//! reports both the lock and the modeled hardware search time.

use crate::config::Gen1Config;

/// Result of a gen1 synchronization attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncResult {
    /// Whether the detection threshold was cleared.
    pub detected: bool,
    /// Sample offset of the preamble-template alignment.
    pub offset: usize,
    /// CFAR detection statistic: correlation peak over the median absolute
    /// correlation across all searched phases. SNR-robust, unlike an
    /// energy-normalized metric, because the floor is estimated from the
    /// same correlator outputs the peak competes with.
    pub metric: f64,
    /// Modeled search time on the parallel hardware, in microseconds.
    pub search_time_us: f64,
    /// Code phases evaluated.
    pub phases_searched: usize,
}

/// The parallelized synchronization engine.
#[derive(Debug, Clone)]
pub struct Gen1Sync {
    template: Vec<f64>,
    config: Gen1Config,
    threshold: f64,
}

impl Gen1Sync {
    /// Creates a sync engine for one preamble-period template.
    ///
    /// # Panics
    ///
    /// Panics if the template is empty.
    pub fn new(template: Vec<f64>, config: Gen1Config) -> Self {
        assert!(!template.is_empty(), "template must be non-empty");
        Gen1Sync {
            template,
            config,
            threshold: 7.0,
        }
    }

    /// Overrides the CFAR detection threshold (peak over median-absolute
    /// correlation). Pure noise peaks near ≈5.7× the median over an 8 k
    /// search; the default 7.0 keeps the false-alarm rate low while
    /// detecting down to the link's operating SNR.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold > 1`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 1.0, "CFAR threshold must exceed 1");
        self.threshold = threshold;
        self
    }

    /// Searches all phases of one preamble period. Returns `None` when the
    /// peak metric stays below the threshold.
    pub fn acquire(&self, samples: &[f64]) -> Option<SyncResult> {
        let m = self.template.len();
        if samples.len() < m {
            return None;
        }
        let period = self.config.preamble_period_samples();
        let n_phases = period.min(samples.len() - m + 1);

        // FFT-based correlation over the search region (equivalent to the
        // hardware's parallel bank, but O(N log N) in simulation).
        let region = &samples[..(n_phases + m - 1).min(samples.len())];
        let corr = {
            let sig_c = uwb_dsp::complex::to_complex(region);
            let tpl_c = uwb_dsp::complex::to_complex(&self.template);
            uwb_dsp::correlation::cross_correlate_fft(&sig_c, &tpl_c)
        };
        let mags: Vec<f64> = corr
            .iter()
            .take(n_phases)
            .map(|z| z.re.abs())
            .collect();
        if mags.is_empty() {
            return None;
        }
        let best_idx = uwb_dsp::math::argmax(&mags)?;
        // CFAR floor: the median absolute correlator output across phases.
        let mut sorted = mags.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let floor = sorted[sorted.len() / 2].max(f64::MIN_POSITIVE);
        let metric = mags[best_idx] / floor;

        let detected = metric >= self.threshold;
        let dwell_s = period as f64 / self.config.sample_rate.as_hz();
        let dwells = n_phases.div_ceil(self.config.sync_parallelism);
        let result = SyncResult {
            detected,
            offset: best_idx,
            metric,
            search_time_us: dwells as f64 * dwell_s * 1e6,
            phases_searched: n_phases,
        };
        detected.then_some(result)
    }

    /// The same search but reporting the result even when detection fails
    /// (for false-alarm statistics).
    pub fn acquire_always(&self, samples: &[f64]) -> SyncResult {
        match self.acquire(samples) {
            Some(r) => r,
            None => {
                // Re-run, but capture the sub-threshold peak.
                let mut engine = self.clone();
                engine.threshold = f64::MIN_POSITIVE;
                engine
                    .acquire(samples)
                    .map(|mut r| {
                        r.detected = false;
                        r
                    })
                    .unwrap_or(SyncResult {
                        detected: false,
                        offset: 0,
                        metric: 0.0,
                        search_time_us: 0.0,
                        phases_searched: 0,
                    })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Gen1Transmitter;
    use uwb_sim::awgn::add_awgn_real;
    use uwb_sim::Rand;

    fn cfg() -> Gen1Config {
        Gen1Config {
            pulses_per_bit: 8,
            ..Gen1Config::demonstrated_193kbps()
        }
    }

    #[test]
    fn locks_on_clean_burst() {
        let config = cfg();
        let tx = Gen1Transmitter::new(config.clone());
        let burst = tx.transmit(&[true, false, true]);
        let sync = Gen1Sync::new(tx.preamble_template(), config);
        let r = sync.acquire(&burst.samples).expect("no lock");
        assert!(r.detected);
        assert_eq!(r.offset, burst.slot0_start);
        assert!(r.metric > 7.0, "{}", r.metric);
    }

    #[test]
    fn search_time_below_70us() {
        let config = cfg();
        let tx = Gen1Transmitter::new(config.clone());
        let burst = tx.transmit(&[true]);
        let sync = Gen1Sync::new(tx.preamble_template(), config);
        let r = sync.acquire(&burst.samples).unwrap();
        assert!(r.search_time_us < 70.0, "{} µs", r.search_time_us);
    }

    #[test]
    fn locks_in_noise() {
        let config = cfg();
        let tx = Gen1Transmitter::new(config.clone());
        let burst = tx.transmit(&[false; 4]);
        let mut rng = Rand::new(1);
        let p = uwb_dsp::complex::mean_power_real(&burst.samples);
        let noisy = add_awgn_real(&burst.samples, 2.0 * p, &mut rng);
        let sync = Gen1Sync::new(tx.preamble_template(), config);
        let r = sync.acquire(&noisy).expect("no lock in noise");
        assert_eq!(r.offset, burst.slot0_start);
    }

    #[test]
    fn rejects_pure_noise() {
        let config = cfg();
        let tx = Gen1Transmitter::new(config.clone());
        let sync = Gen1Sync::new(tx.preamble_template(), config);
        let mut rng = Rand::new(2);
        let noise: Vec<f64> = (0..50_000).map(|_| rng.gaussian()).collect();
        assert!(sync.acquire(&noise).is_none());
        let r = sync.acquire_always(&noise);
        assert!(!r.detected);
        assert!(r.metric < 7.0, "{}", r.metric);
    }

    #[test]
    fn short_input_returns_none() {
        let config = cfg();
        let tx = Gen1Transmitter::new(config.clone());
        let sync = Gen1Sync::new(tx.preamble_template(), config);
        assert!(sync.acquire(&[0.0; 10]).is_none());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let config = cfg();
        Gen1Sync::new(vec![1.0], config).with_threshold(0.5);
    }
}
